#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <memory>
#include <set>

#include "data/partition.h"
#include "fl/algorithm.h"
#include "fl/client.h"
#include "fl/clusamp.h"
#include "fl/comm_tracker.h"
#include "fl/evaluator.h"
#include "fl/fedavg.h"
#include "fl/fedcluster.h"
#include "fl/fedgen.h"
#include "fl/history.h"
#include "fl/scaffold.h"
#include "nn/linear.h"
#include "test_util.h"

namespace fedcross::fl {
namespace {

// Logistic-regression factory over `dim` features, 2 classes.
models::ModelFactory LinearFactory(int dim, std::uint64_t seed = 1) {
  return [dim, seed]() {
    util::Rng rng(seed);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(dim, 2, rng));
    return model;
  };
}

// Small two-class federated corpus. With label_skew, client i is dominated
// by class i%2 (non-IID); otherwise clients are IID.
data::FederatedDataset MakeToyFederated(int num_clients, int per_client,
                                        int dim, bool label_skew,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  data::FederatedDataset federated;
  federated.num_classes = 2;
  auto gen_example = [&](int k, std::vector<float>& features) {
    float mean = k == 0 ? -1.0f : 1.0f;
    for (int d = 0; d < dim; ++d) {
      features.push_back(mean + static_cast<float>(rng.Normal(0.0, 0.6)));
    }
  };
  for (int c = 0; c < num_clients; ++c) {
    std::vector<float> features;
    std::vector<int> labels;
    for (int i = 0; i < per_client; ++i) {
      int k;
      if (label_skew) {
        k = rng.Uniform() < 0.9 ? c % 2 : 1 - c % 2;
      } else {
        k = static_cast<int>(rng.UniformInt(2));
      }
      gen_example(k, features);
      labels.push_back(k);
    }
    federated.client_train.push_back(std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{dim}, std::move(features), std::move(labels), 2));
  }
  std::vector<float> features;
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) {
    int k = i % 2;
    gen_example(k, features);
    labels.push_back(k);
  }
  federated.test = std::make_shared<data::InMemoryDataset>(
      Tensor::Shape{dim}, std::move(features), std::move(labels), 2);
  return federated;
}

AlgorithmConfig ToyConfig(int k = 4) {
  AlgorithmConfig config;
  config.clients_per_round = k;
  config.train.local_epochs = 2;
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.train.momentum = 0.5f;
  config.seed = 11;
  return config;
}

// ----------------------------------------------------------------- Client

TEST(FlClientTest, TrainingImprovesLocalFit) {
  auto dataset = testing::MakeToyDataset(30, 4, 0.4f, 3);
  FlClient client(0, dataset);
  models::ModelFactory factory = LinearFactory(4);
  nn::Sequential probe = factory();
  FlatParams init = probe.ParamsToFlat();

  ClientTrainSpec spec;
  spec.options.local_epochs = 5;
  spec.options.batch_size = 10;
  spec.options.lr = 0.1f;
  util::Rng rng(1);
  LocalTrainResult result = client.Train(factory, init, spec, rng);

  EXPECT_EQ(result.num_samples, 60);
  EXPECT_EQ(result.num_steps, 5 * 6);
  EXPECT_NE(result.params, init);
  EvalResult before = EvaluateParams(factory, init, *dataset);
  EvalResult after = EvaluateParams(factory, result.params, *dataset);
  EXPECT_LT(after.loss, before.loss);
  EXPECT_GT(after.accuracy, 0.9f);
}

TEST(FlClientTest, ProxTermAnchorsParameters) {
  auto dataset = testing::MakeToyDataset(30, 4, 0.4f, 4);
  FlClient client(0, dataset);
  models::ModelFactory factory = LinearFactory(4);
  FlatParams init = factory().ParamsToFlat();

  auto drift = [&](float mu) {
    ClientTrainSpec spec;
    spec.options.local_epochs = 5;
    spec.options.lr = 0.1f;
    spec.options.batch_size = 10;
    spec.prox_anchor = &init;
    spec.prox_mu = mu;
    util::Rng rng(2);
    LocalTrainResult result = client.Train(factory, init, spec, rng);
    double total = 0.0;
    for (std::size_t i = 0; i < init.size(); ++i) {
      total += (result.params[i] - init[i]) * (result.params[i] - init[i]);
    }
    return std::sqrt(total);
  };
  // A strong proximal term must keep the model closer to the anchor.
  EXPECT_LT(drift(10.0f), drift(0.0f) * 0.6);
}

TEST(FlClientTest, ScaffoldCorrectionShiftsResult) {
  auto dataset = testing::MakeToyDataset(30, 4, 0.4f, 5);
  FlClient client(0, dataset);
  models::ModelFactory factory = LinearFactory(4);
  FlatParams init = factory().ParamsToFlat();

  ClientTrainSpec plain;
  plain.options.local_epochs = 2;
  plain.options.lr = 0.05f;
  util::Rng rng1(3), rng2(3);
  LocalTrainResult base = client.Train(factory, init, plain, rng1);

  FlatParams correction(init.size(), 0.1f);
  ClientTrainSpec corrected = plain;
  corrected.scaffold_correction = &correction;
  LocalTrainResult shifted = client.Train(factory, init, corrected, rng2);
  EXPECT_NE(base.params, shifted.params);
}

TEST(FlClientTest, DeterministicGivenSameRngState) {
  auto dataset = testing::MakeToyDataset(20, 4, 0.4f, 6);
  FlClient client(0, dataset);
  models::ModelFactory factory = LinearFactory(4);
  FlatParams init = factory().ParamsToFlat();
  ClientTrainSpec spec;
  spec.options.local_epochs = 2;

  util::Rng rng_a(7), rng_b(7);
  LocalTrainResult a = client.Train(factory, init, spec, rng_a);
  LocalTrainResult b = client.Train(factory, init, spec, rng_b);
  EXPECT_EQ(a.params, b.params);
}

// -------------------------------------------------------------- Evaluator

TEST(EvaluatorTest, PerfectLinearModelScoresFull) {
  auto dataset = testing::MakeToyDataset(50, 2, 0.1f, 8);
  models::ModelFactory factory = LinearFactory(2);
  // Hand-build a separating hyperplane: logit_1 - logit_0 = 4*(x0 + x1).
  nn::Sequential model = factory();
  FlatParams params = model.ParamsToFlat();
  // Layout: W[2x2] row-major then b[2]. W = [[-2, 2], [-2, 2]].
  params = {-2.0f, 2.0f, -2.0f, 2.0f, 0.0f, 0.0f};
  EvalResult result = EvaluateParams(factory, params, *dataset);
  EXPECT_GT(result.accuracy, 0.99f);
  EXPECT_LT(result.loss, 0.1f);
}

TEST(EvaluatorTest, RandomModelNearChance) {
  auto dataset = testing::MakeToyDataset(200, 2, 0.1f, 9);
  models::ModelFactory factory = LinearFactory(2, /*seed=*/5);
  FlatParams zero(factory().NumParams(), 0.0f);
  EvalResult result = EvaluateParams(factory, zero, *dataset);
  EXPECT_NEAR(result.loss, std::log(2.0f), 1e-4f);
}

// ------------------------------------------------------------ CommTracker

TEST(CommTrackerTest, RoundAndTotalCounters) {
  CommTracker tracker;
  tracker.BeginRound();
  tracker.AddDownload(/*raw_bytes=*/100, /*wire_bytes=*/80);
  tracker.AddUpload(/*raw_bytes=*/50, /*wire_bytes=*/10);
  EXPECT_EQ(tracker.round_download_bytes(), 100u);
  EXPECT_EQ(tracker.round_upload_bytes(), 50u);
  EXPECT_EQ(tracker.round_wire_download_bytes(), 80u);
  EXPECT_EQ(tracker.round_wire_upload_bytes(), 10u);
  tracker.BeginRound();
  EXPECT_EQ(tracker.round_download_bytes(), 0u);
  EXPECT_EQ(tracker.round_wire_upload_bytes(), 0u);
  EXPECT_EQ(tracker.total_download_bytes(), 100u);
  EXPECT_EQ(tracker.total_upload_bytes(), 50u);
  EXPECT_EQ(tracker.total_wire_download_bytes(), 80u);
  EXPECT_EQ(tracker.total_wire_upload_bytes(), 10u);
}

TEST(CommTrackerTest, CountsStayExactPastDoublePrecision) {
  // 2^53 + 1 is where double-backed counters used to silently round.
  CommTracker tracker;
  tracker.AddDownload((1ULL << 53) + 1, 0);
  tracker.AddDownload(1, 0);
  EXPECT_EQ(tracker.total_download_bytes(), (1ULL << 53) + 2);
}

TEST(CommTrackerTest, RestoreResetsRoundCounters) {
  CommTracker tracker;
  tracker.AddUpload(7, 3);
  tracker.Restore(1000, 2000, 800, 400);
  EXPECT_EQ(tracker.round_upload_bytes(), 0u);
  EXPECT_EQ(tracker.total_download_bytes(), 1000u);
  EXPECT_EQ(tracker.total_upload_bytes(), 2000u);
  EXPECT_EQ(tracker.total_wire_download_bytes(), 800u);
  EXPECT_EQ(tracker.total_wire_upload_bytes(), 400u);
}

TEST(CommTrackerTest, FloatBytes) {
  EXPECT_EQ(CommTracker::FloatBytes(10), 40u);
}

// ---------------------------------------------------------------- History

TEST(MetricsHistoryTest, BestAndFinalAccuracy) {
  MetricsHistory history;
  for (int r = 1; r <= 10; ++r) {
    RoundRecord record;
    record.round = r;
    record.test_accuracy = r == 7 ? 0.9f : 0.1f * r;
    history.Add(record);
  }
  EXPECT_FLOAT_EQ(history.BestAccuracy(), 1.0f);
  EXPECT_EQ(history.RoundsToAccuracy(0.65f), 7);
  EXPECT_EQ(history.RoundsToAccuracy(2.0f), -1);
  EXPECT_GT(history.FinalAccuracy(3), 0.7f);
}

TEST(MetricsHistoryTest, WriteCsv) {
  MetricsHistory history;
  RoundRecord record;
  record.round = 1;
  record.test_accuracy = 0.5f;
  history.Add(record);
  std::string path = ::testing::TempDir() + "/history.csv";
  ASSERT_TRUE(history.WriteCsv(path, "FedAvg").ok());
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_NE(header.find("test_accuracy"), std::string::npos);
  EXPECT_NE(row.find("FedAvg"), std::string::npos);
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- FedAvg

TEST(FedAvgTest, LearnsToyProblem) {
  FedAvg fedavg(ToyConfig(), MakeToyFederated(8, 40, 4, false, 21),
                LinearFactory(4));
  const MetricsHistory& history = fedavg.Run(8);
  EXPECT_GT(history.BestAccuracy(), 0.9f);
}

TEST(FedAvgTest, CommunicationIs2KModels) {
  AlgorithmConfig config = ToyConfig(4);
  FedAvg fedavg(config, MakeToyFederated(8, 20, 4, false, 22),
                LinearFactory(4));
  fedavg.Run(1);
  double model_bytes = CommTracker::FloatBytes(fedavg.model_size());
  const RoundRecord& record = fedavg.history().records().back();
  EXPECT_EQ(record.bytes_down, 4 * model_bytes);
  EXPECT_EQ(record.bytes_up, 4 * model_bytes);
}

TEST(FedAvgTest, GlobalIsWeightedAverageOfClientModels) {
  // With one client per round, the new global equals that client's model.
  AlgorithmConfig config = ToyConfig(1);
  FedAvg fedavg(config, MakeToyFederated(3, 20, 4, false, 23),
                LinearFactory(4));
  fedavg.Run(1);
  // Smoke: global parameters moved away from init.
  FlatParams init = LinearFactory(4)().ParamsToFlat();
  EXPECT_NE(fedavg.GlobalParams(), init);
}

TEST(WeightedAverageTest, Arithmetic) {
  // Exposed via a FedAvg-derived helper: test through public behaviour of
  // Average on a 2-model list using a tiny subclass.
  struct Probe : FedAvg {
    using FedAvg::Average;
    using FedAvg::FedAvg;
    using FedAvg::WeightedAverage;
  };
  std::vector<FlatParams> models = {{1.0f, 2.0f}, {3.0f, 6.0f}};
  EXPECT_EQ(Probe::Average(models), (FlatParams{2.0f, 4.0f}));
  EXPECT_EQ(Probe::WeightedAverage(models, {3.0, 1.0}),
            (FlatParams{1.5f, 3.0f}));
}

// ---------------------------------------------------------------- FedProx

TEST(FedProxTest, RunsAndLearns) {
  FedProx fedprox(ToyConfig(), MakeToyFederated(8, 40, 4, true, 24),
                  LinearFactory(4), /*mu=*/0.01f);
  const MetricsHistory& history = fedprox.Run(8);
  EXPECT_GT(history.BestAccuracy(), 0.85f);
  EXPECT_EQ(fedprox.name(), "FedProx");
}

// --------------------------------------------------------------- SCAFFOLD

TEST(ScaffoldTest, RunsAndLearns) {
  Scaffold scaffold(ToyConfig(), MakeToyFederated(8, 40, 4, true, 25),
                    LinearFactory(4));
  const MetricsHistory& history = scaffold.Run(8);
  EXPECT_GT(history.BestAccuracy(), 0.85f);
}

TEST(ScaffoldTest, CommunicationIsDoubleFedAvg) {
  AlgorithmConfig config = ToyConfig(4);
  Scaffold scaffold(config, MakeToyFederated(8, 20, 4, false, 26),
                    LinearFactory(4));
  scaffold.Run(1);
  double model_bytes = CommTracker::FloatBytes(scaffold.model_size());
  const RoundRecord& record = scaffold.history().records().back();
  // Model + control variate in each direction.
  EXPECT_EQ(record.bytes_down, 2 * 4 * model_bytes);
  EXPECT_EQ(record.bytes_up, 2 * 4 * model_bytes);
}

TEST(ScaffoldTest, ServerVariateBecomesNonZero) {
  Scaffold scaffold(ToyConfig(4), MakeToyFederated(8, 20, 4, true, 27),
                    LinearFactory(4));
  scaffold.Run(2);
  double norm = 0.0;
  for (float v : scaffold.server_variate()) norm += std::abs(v);
  EXPECT_GT(norm, 0.0);
}

// ---------------------------------------------------------------- CluSamp

TEST(CluSampTest, RunsAndLearns) {
  CluSamp clusamp(ToyConfig(), MakeToyFederated(8, 40, 4, true, 28),
                  LinearFactory(4));
  const MetricsHistory& history = clusamp.Run(8);
  EXPECT_GT(history.BestAccuracy(), 0.85f);
}

TEST(CluSampTest, AssignmentCoversAllClusters) {
  AlgorithmConfig config = ToyConfig(3);
  CluSamp clusamp(config, MakeToyFederated(9, 20, 4, true, 29),
                  LinearFactory(4));
  clusamp.Run(3);
  const std::vector<int>& assignment = clusamp.cluster_assignment();
  ASSERT_EQ(assignment.size(), 9u);
  std::set<int> clusters(assignment.begin(), assignment.end());
  EXPECT_EQ(clusters.size(), 3u);
  for (int c : assignment) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 3);
  }
}

// ----------------------------------------------------------------- FedGen

TEST(FedGenTest, RunsAndLearns) {
  FedGen fedgen(ToyConfig(), MakeToyFederated(8, 40, 4, true, 30),
                LinearFactory(4));
  const MetricsHistory& history = fedgen.Run(8);
  EXPECT_GT(history.BestAccuracy(), 0.85f);
}

TEST(FedGenTest, GeneratorPayloadIncreasesDownload) {
  AlgorithmConfig config = ToyConfig(4);
  data::FederatedDataset data = MakeToyFederated(8, 20, 4, false, 31);
  FedGen fedgen(config, std::move(data), LinearFactory(4));
  fedgen.Run(2);  // generator dispatched from round 2 on
  double model_bytes = CommTracker::FloatBytes(fedgen.model_size());
  double generator_bytes = CommTracker::FloatBytes(fedgen.generator_size());
  const RoundRecord& record = fedgen.history().records().back();
  EXPECT_EQ(record.bytes_down, 4 * (model_bytes + generator_bytes));
  EXPECT_EQ(record.bytes_up, 4 * model_bytes);
}


// -------------------------------------------------------------- FedCluster

TEST(FedClusterTest, RunsAndLearns) {
  FedCluster fedcluster(ToyConfig(4), MakeToyFederated(8, 40, 4, true, 34),
                        LinearFactory(4), /*num_clusters=*/2);
  const MetricsHistory& history = fedcluster.Run(8);
  EXPECT_GT(history.BestAccuracy(), 0.85f);
}

TEST(FedClusterTest, ClustersPartitionClients) {
  FedCluster fedcluster(ToyConfig(4), MakeToyFederated(9, 10, 4, false, 35),
                        LinearFactory(4), /*num_clusters=*/3);
  std::set<int> seen;
  std::size_t total = 0;
  for (const auto& cluster : fedcluster.clusters()) {
    seen.insert(cluster.begin(), cluster.end());
    total += cluster.size();
  }
  EXPECT_EQ(seen.size(), 9u);
  EXPECT_EQ(total, 9u);
  EXPECT_EQ(fedcluster.clusters().size(), 3u);
}

TEST(FedClusterTest, CommunicationStaysLow) {
  // One cycle trains ~K clients total: 2K model payloads, like FedAvg.
  AlgorithmConfig config = ToyConfig(4);
  FedCluster fedcluster(config, MakeToyFederated(8, 20, 4, false, 36),
                        LinearFactory(4), /*num_clusters=*/2);
  fedcluster.Run(1);
  double model_bytes = CommTracker::FloatBytes(fedcluster.model_size());
  const RoundRecord& record = fedcluster.history().records().back();
  EXPECT_EQ(record.bytes_down, 4 * model_bytes);
  EXPECT_EQ(record.bytes_up, 4 * model_bytes);
}

// -------------------------------------------------------- Base invariants

TEST(FlAlgorithmTest, SampleClientsAreDistinctAndInRange) {
  struct Probe : FedAvg {
    using FedAvg::FedAvg;
    using FedAvg::SampleClients;
  };
  Probe probe(ToyConfig(5), MakeToyFederated(12, 10, 4, false, 32),
              LinearFactory(4));
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::int64_t> sample = probe.SampleClients();
    std::set<std::int64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 5u);
    for (std::int64_t id : sample) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, 12);
    }
  }
}

TEST(FlAlgorithmTest, EvalEveryThinsHistory) {
  FedAvg fedavg(ToyConfig(2), MakeToyFederated(4, 10, 4, false, 33),
                LinearFactory(4));
  fedavg.Run(6, /*eval_every=*/3);
  EXPECT_EQ(fedavg.history().records().size(), 2u);
}

}  // namespace
}  // namespace fedcross::fl
