#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/landscape.h"
#include "fl/evaluator.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "test_util.h"

namespace fedcross::core {
namespace {

models::ModelFactory LinearFactory(int dim, std::uint64_t seed = 1) {
  return [dim, seed]() {
    util::Rng rng(seed);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(dim, 2, rng));
    return model;
  };
}

TEST(LandscapeTest, GridShapeAndCenter) {
  auto dataset = testing::MakeToyDataset(30, 4, 0.4f, 1);
  models::ModelFactory factory = LinearFactory(4);
  fl::FlatParams params = factory().ParamsToFlat();

  LandscapeOptions options;
  options.grid = 7;
  options.radius = 0.5;
  LandscapeResult result = ProbeLossLandscape(factory, params, *dataset,
                                              options);
  ASSERT_EQ(result.loss.size(), 7u);
  ASSERT_EQ(result.loss[0].size(), 7u);
  EXPECT_DOUBLE_EQ(result.loss[3][3], result.center_loss);
  for (const auto& row : result.loss) {
    for (double value : row) EXPECT_TRUE(std::isfinite(value));
  }
}

TEST(LandscapeTest, CenterLossMatchesDirectEvaluation) {
  auto dataset = testing::MakeToyDataset(30, 4, 0.4f, 2);
  models::ModelFactory factory = LinearFactory(4);
  fl::FlatParams params = factory().ParamsToFlat();

  LandscapeOptions options;
  LandscapeResult result = ProbeLossLandscape(factory, params, *dataset,
                                              options);
  fl::EvalResult direct = fl::EvaluateParams(factory, params, *dataset, 100);
  EXPECT_NEAR(result.center_loss, direct.loss, 1e-5);
}

TEST(LandscapeTest, TrainedMinimumHasPositiveSharpness) {
  // Train a linear model to (near) optimum; the landscape around it should
  // rise towards the border.
  auto dataset = testing::MakeToyDataset(40, 4, 0.3f, 3);
  models::ModelFactory factory = LinearFactory(4);
  nn::Sequential model = factory();

  // Quick full-batch training.
  nn::CrossEntropyLoss criterion;
  Tensor features;
  std::vector<int> labels;
  std::vector<int> all(dataset->size());
  for (int i = 0; i < dataset->size(); ++i) all[i] = i;
  dataset->GetBatch(all, features, labels);
  for (int step = 0; step < 200; ++step) {
    model.ZeroGrad();
    nn::LossResult loss =
        criterion.Compute(model.Forward(features, true), labels);
    model.Backward(loss.grad_logits);
    for (nn::Param* param : model.Params()) {
      param->value.Axpy(-0.2f, param->grad);
    }
  }
  fl::FlatParams params = model.ParamsToFlat();

  LandscapeOptions options;
  options.radius = 1.0;
  LandscapeResult result = ProbeLossLandscape(factory, params, *dataset,
                                              options);
  EXPECT_GT(result.border_sharpness, 0.0);
  EXPECT_GT(result.max_increase, 0.0);
}

TEST(LandscapeTest, MaxExamplesLimitsCost) {
  auto dataset = testing::MakeToyDataset(100, 4, 0.4f, 4);
  models::ModelFactory factory = LinearFactory(4);
  fl::FlatParams params = factory().ParamsToFlat();

  LandscapeOptions options;
  options.grid = 3;
  options.max_examples = 10;
  LandscapeResult result = ProbeLossLandscape(factory, params, *dataset,
                                              options);
  EXPECT_TRUE(std::isfinite(result.center_loss));
}

TEST(LandscapeTest, DeterministicForSeed) {
  auto dataset = testing::MakeToyDataset(20, 4, 0.4f, 5);
  models::ModelFactory factory = LinearFactory(4);
  fl::FlatParams params = factory().ParamsToFlat();
  LandscapeOptions options;
  options.grid = 3;
  LandscapeResult a = ProbeLossLandscape(factory, params, *dataset, options);
  LandscapeResult b = ProbeLossLandscape(factory, params, *dataset, options);
  EXPECT_EQ(a.loss, b.loss);
}

TEST(DirectionalSharpnessTest, ScaledLossIsSharper) {
  // f(w) on a trained model versus the same landscape with parameters
  // doubled: perturbations of fixed *relative* radius probe the same
  // relative neighbourhood, but an untrained (flat, high-loss) model
  // differs from a trained minimum. We check the weaker, robust property:
  // sharpness at a trained minimum is positive and larger radii hurt more.
  auto dataset = testing::MakeToyDataset(40, 4, 0.3f, 6);
  models::ModelFactory factory = LinearFactory(4);
  nn::Sequential model = factory();
  nn::CrossEntropyLoss criterion;
  Tensor features;
  std::vector<int> labels;
  std::vector<int> all(dataset->size());
  for (int i = 0; i < dataset->size(); ++i) all[i] = i;
  dataset->GetBatch(all, features, labels);
  for (int step = 0; step < 200; ++step) {
    model.ZeroGrad();
    nn::LossResult loss =
        criterion.Compute(model.Forward(features, true), labels);
    model.Backward(loss.grad_logits);
    for (nn::Param* param : model.Params()) {
      param->value.Axpy(-0.2f, param->grad);
    }
  }
  fl::FlatParams params = model.ParamsToFlat();

  double small = DirectionalSharpness(factory, params, *dataset, 0.3, 6, 7);
  double large = DirectionalSharpness(factory, params, *dataset, 1.0, 6, 7);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

}  // namespace
}  // namespace fedcross::core
