// Observability subsystem tests: sharded metrics correctness under
// concurrent hammering, snapshot determinism across thread counts, trace
// JSON well-formedness (parsed back by a small validating parser), round
// events, and — the contract everything else rests on — that enabling every
// sink changes nothing about training, while disabling them mutates nothing
// in the registry.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/fedcross.h"
#include "fl/algorithm.h"
#include "fl/parallel.h"
#include "nn/linear.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace fedcross {
namespace {

// Minimal validating JSON parser (objects, arrays, strings, numbers, bools,
// null): Parse() returns true iff the whole input is one well-formed value.
// Exists so the trace/metrics files are checked by an actual round-trip, not
// a substring sniff.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Parse() {
    pos_ = 0;
    if (!ParseValue()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseString() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    return Consume('"');
  }

  bool ParseNumber() {
    SkipSpace();
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_]))) digits = true;
      ++pos_;
    }
    return digits && pos_ > start;
  }

  bool ParseLiteral(const char* word) {
    SkipSpace();
    std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't') return ParseLiteral("true");
    if (c == 'f') return ParseLiteral("false");
    if (c == 'n') return ParseLiteral("null");
    return ParseNumber();
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    for (;;) {
      if (!ParseString() || !Consume(':') || !ParseValue()) return false;
      SkipSpace();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    for (;;) {
      if (!ParseValue()) return false;
      SkipSpace();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int CountOccurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// Restores a pristine observability state no matter how the test exits.
struct ObsGuard {
  ~ObsGuard() {
    obs::SetMetricsEnabled(false);
    obs::SetTracingEnabled(false);
    obs::SetEventsPath("");
    obs::MetricsRegistry::Global().Reset();
    obs::TraceRecorder::Global().Clear();
    fl::SetFlThreads(1);
  }
};

models::ModelFactory LinearFactory(int dim) {
  return [dim]() {
    util::Rng rng(1);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(dim, 2, rng));
    return model;
  };
}

data::FederatedDataset MakeToyFederated(int num_clients, int per_client,
                                        int dim, std::uint64_t seed) {
  util::Rng rng(seed);
  data::FederatedDataset federated;
  federated.num_classes = 2;
  auto gen_example = [&](int k, std::vector<float>& features) {
    float mean = k == 0 ? -1.0f : 1.0f;
    for (int d = 0; d < dim; ++d) {
      features.push_back(mean + static_cast<float>(rng.Normal(0.0, 0.6)));
    }
  };
  for (int c = 0; c < num_clients; ++c) {
    std::vector<float> features;
    std::vector<int> labels;
    for (int i = 0; i < per_client; ++i) {
      int k = rng.Uniform() < 0.9 ? c % 2 : 1 - c % 2;
      gen_example(k, features);
      labels.push_back(k);
    }
    federated.client_train.push_back(std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{dim}, std::move(features), std::move(labels), 2));
  }
  std::vector<float> features;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    gen_example(i % 2, features);
    labels.push_back(i % 2);
  }
  federated.test = std::make_shared<data::InMemoryDataset>(
      Tensor::Shape{dim}, std::move(features), std::move(labels), 2);
  return federated;
}

fl::AlgorithmConfig ToyConfig() {
  fl::AlgorithmConfig config;
  config.clients_per_round = 4;
  config.train.local_epochs = 2;
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.seed = 17;
  config.dropout_prob = 0.2;  // exercise the fault counters too
  return config;
}

// Runs a fresh 3-round FedCross federation and returns its history.
const int kRounds = 3;

std::unique_ptr<core::FedCross> MakeFedCross() {
  core::FedCrossOptions options;
  options.alpha = 0.9;
  return std::make_unique<core::FedCross>(
      ToyConfig(), MakeToyFederated(8, 30, 8, 3), LinearFactory(8), options);
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsTest, CounterExactUnderConcurrentHammering) {
  ObsGuard guard;
  obs::MetricsRegistry::Global().Reset();
  obs::SetMetricsEnabled(true);
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("test.hammer");

  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  util::ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](int) {
    for (int i = 0; i < kAddsPerTask; ++i) counter.Add(1);
  });
  EXPECT_EQ(counter.Value(),
            static_cast<std::int64_t>(kTasks) * kAddsPerTask);
}

TEST(MetricsTest, HistogramConcurrentObservationsLandInRightBuckets) {
  ObsGuard guard;
  obs::MetricsRegistry::Global().Reset();
  obs::SetMetricsEnabled(true);
  obs::Histogram& histogram = obs::MetricsRegistry::Global().GetHistogram(
      "test.hist", {1.0, 10.0, 100.0});

  // 64 tasks x (one observation per bucket incl. overflow).
  util::ThreadPool pool(8);
  pool.ParallelFor(64, [&](int) {
    histogram.Observe(0.5);    // <= 1
    histogram.Observe(5.0);    // <= 10
    histogram.Observe(50.0);   // <= 100
    histogram.Observe(500.0);  // overflow
  });

  EXPECT_EQ(histogram.TotalCount(), 64 * 4);
  std::vector<std::int64_t> buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 64);
  EXPECT_EQ(buckets[1], 64);
  EXPECT_EQ(buckets[2], 64);
  EXPECT_EQ(buckets[3], 64);
  EXPECT_NEAR(histogram.Sum(), 64 * (0.5 + 5.0 + 50.0 + 500.0), 1e-6);
}

TEST(MetricsTest, GaugeKeepsLastWrite) {
  ObsGuard guard;
  obs::MetricsRegistry::Global().Reset();
  obs::SetMetricsEnabled(true);
  obs::Gauge& gauge = obs::MetricsRegistry::Global().GetGauge("test.gauge");
  gauge.Set(1.5);
  gauge.Set(-3.25);
  EXPECT_EQ(gauge.Value(), -3.25);
}

TEST(MetricsTest, RegistrationIsIdempotentAndSnapshotSorted) {
  ObsGuard guard;
  obs::MetricsRegistry::Global().Reset();
  obs::SetMetricsEnabled(true);
  obs::Counter& a = obs::MetricsRegistry::Global().GetCounter("test.zz");
  obs::Counter& b = obs::MetricsRegistry::Global().GetCounter("test.aa");
  obs::Counter& a2 = obs::MetricsRegistry::Global().GetCounter("test.zz");
  EXPECT_EQ(&a, &a2);  // stable address
  a.Add(2);
  b.Add(1);

  std::vector<obs::MetricSnapshot> snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  for (std::size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].name, snapshot[i].name);
  }
  // Handles survive Reset; values do not.
  obs::MetricsRegistry::Global().Reset();
  EXPECT_EQ(a.Value(), 0);
  a.Add(5);
  EXPECT_EQ(a.Value(), 5);
}

TEST(MetricsTest, DisabledMutatorsAreNoOps) {
  ObsGuard guard;
  obs::MetricsRegistry::Global().Reset();
  obs::SetMetricsEnabled(false);

  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("test.disabled.counter");
  obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("test.disabled.gauge");
  obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("test.disabled.hist");

  counter.Add(7);
  gauge.Set(1.0);
  histogram.Observe(3.0);

  EXPECT_EQ(counter.Value(), 0);
  EXPECT_EQ(gauge.Value(), 0.0);
  EXPECT_EQ(histogram.TotalCount(), 0);
  EXPECT_EQ(histogram.Sum(), 0.0);
}

TEST(MetricsTest, WriteJsonRoundTrips) {
  ObsGuard guard;
  obs::MetricsRegistry::Global().Reset();
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry::Global().GetCounter("test.json.counter").Add(3);
  obs::MetricsRegistry::Global().GetGauge("test.json.gauge").Set(2.5);
  obs::MetricsRegistry::Global()
      .GetHistogram("test.json.hist", {1.0, 2.0})
      .Observe(1.5);

  std::string path = ::testing::TempDir() + "obs_metrics_test.json";
  ASSERT_TRUE(obs::MetricsRegistry::Global().WriteJson(path));
  std::string text = ReadFile(path);
  JsonValidator validator(text);
  EXPECT_TRUE(validator.Parse()) << text;
  EXPECT_NE(text.find("\"test.json.counter\""), std::string::npos);
  EXPECT_NE(text.find("\"test.json.gauge\""), std::string::npos);
  EXPECT_NE(text.find("\"test.json.hist\""), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Tracing.

TEST(TraceTest, SpansRecordAndExportAsValidChromeJson) {
  ObsGuard guard;
  obs::TraceRecorder::Global().Clear();
  obs::SetTracingEnabled(true);

  {
    FC_TRACE_SPAN("test.outer");
    FC_TRACE_SPAN_ARG("test.with_arg", 42);
  }
  // Spans recorded from pool workers land in their own rings.
  util::ThreadPool pool(4);
  pool.ParallelFor(16, [&](int i) { FC_TRACE_SPAN_ARG("test.worker", i); });

  EXPECT_GE(obs::TraceRecorder::Global().EventCount(), 18u);

  std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(obs::TraceRecorder::Global().WriteJson(path));
  std::string text = ReadFile(path);
  JsonValidator validator(text);
  EXPECT_TRUE(validator.Parse()) << text.substr(0, 500);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"test.with_arg\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(text, "\"test.worker\""), 16);
  std::remove(path.c_str());
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  ObsGuard guard;
  obs::TraceRecorder::Global().Clear();
  obs::SetTracingEnabled(false);
  {
    FC_TRACE_SPAN("test.invisible");
  }
  EXPECT_EQ(obs::TraceRecorder::Global().EventCount(), 0u);
}

TEST(TraceTest, RingKeepsNewestOnOverflow) {
  ObsGuard guard;
  obs::TraceRecorder::Global().Clear();
  obs::SetTracingEnabled(true);
  for (std::size_t i = 0; i < obs::TraceRecorder::kRingCapacity + 100; ++i) {
    FC_TRACE_SPAN("test.flood");
  }
  // Capped at capacity for this thread's ring, not growing unbounded.
  EXPECT_EQ(obs::TraceRecorder::Global().EventCount() %
                obs::TraceRecorder::kRingCapacity,
            0u);
}

// ---------------------------------------------------------------------------
// Round events + end-to-end contracts.

bool HistoriesBitIdentical(const fl::MetricsHistory& a,
                           const fl::MetricsHistory& b) {
  const std::vector<fl::RoundRecord>& ra = a.records();
  const std::vector<fl::RoundRecord>& rb = b.records();
  if (ra.size() != rb.size()) return false;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].round != rb[i].round || ra[i].test_loss != rb[i].test_loss ||
        ra[i].test_accuracy != rb[i].test_accuracy ||
        ra[i].bytes_up != rb[i].bytes_up ||
        ra[i].bytes_down != rb[i].bytes_down ||
        ra[i].mean_client_loss != rb[i].mean_client_loss) {
      return false;
    }
  }
  return true;
}

TEST(ObsEndToEndTest, EnablingEverySinkDoesNotChangeTraining) {
  ObsGuard guard;

  // Reference run: everything off.
  obs::SetMetricsEnabled(false);
  obs::SetTracingEnabled(false);
  obs::SetEventsPath("");
  auto baseline = MakeFedCross();
  fl::MetricsHistory history_off = baseline->Run(kRounds, 1);
  fl::FlatParams params_off = baseline->GlobalParams();

  // Observed run: all three sinks armed.
  std::string events_path = ::testing::TempDir() + "obs_events_test.jsonl";
  obs::MetricsRegistry::Global().Reset();
  obs::TraceRecorder::Global().Clear();
  obs::SetMetricsEnabled(true);
  obs::SetTracingEnabled(true);
  ASSERT_TRUE(obs::SetEventsPath(events_path));
  auto observed = MakeFedCross();
  fl::MetricsHistory history_on = observed->Run(kRounds, 1);
  fl::FlatParams params_on = observed->GlobalParams();
  obs::SetEventsPath("");  // flush + close before reading back

  EXPECT_TRUE(HistoriesBitIdentical(history_off, history_on));
  ASSERT_EQ(params_off.size(), params_on.size());
  for (std::size_t i = 0; i < params_off.size(); ++i) {
    ASSERT_EQ(params_off[i], params_on[i]) << "param " << i;
  }

  // One well-formed event per round, carrying the phase timings and stats.
  std::ifstream in(events_path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    JsonValidator validator(line);
    EXPECT_TRUE(validator.Parse()) << line;
    EXPECT_NE(line.find("\"algo\":\"FedCross\""), std::string::npos);
    EXPECT_NE(line.find("\"round\":"), std::string::npos);
    EXPECT_NE(line.find("\"train_ms\":"), std::string::npos);
    EXPECT_NE(line.find("\"aggregate_ms\":"), std::string::npos);
    EXPECT_NE(line.find("\"eval_ms\":"), std::string::npos);
    EXPECT_NE(line.find("\"bytes_up\":"), std::string::npos);
    EXPECT_NE(line.find("\"dropouts\":"), std::string::npos);
  }
  EXPECT_EQ(lines, kRounds);

  // The trace holds the per-round phase spans; the export parses back.
  std::string trace_path = ::testing::TempDir() + "obs_trace_e2e.json";
  ASSERT_TRUE(obs::TraceRecorder::Global().WriteJson(trace_path));
  std::string trace_text = ReadFile(trace_path);
  JsonValidator trace_validator(trace_text);
  EXPECT_TRUE(trace_validator.Parse());
  EXPECT_EQ(CountOccurrences(trace_text, "\"fl.round\""), kRounds);
  EXPECT_GE(CountOccurrences(trace_text, "\"phase.train\""), kRounds);
  EXPECT_GE(CountOccurrences(trace_text, "\"phase.eval\""), kRounds);

  std::remove(events_path.c_str());
  std::remove(trace_path.c_str());
}

// The deterministic metric subset (round/job/upload counts, comm bytes,
// fault tallies) must be invariant under the thread count. Scheduling
// metrics (pool checkouts, queue depths, latencies) legitimately vary.
bool IsThreadCountInvariant(const std::string& name) {
  return name.rfind("fl.rounds", 0) == 0 ||
         name.rfind("fl.clients.", 0) == 0 ||
         name.rfind("fl.uploads.", 0) == 0 ||
         name.rfind("fl.comm.", 0) == 0 || name.rfind("fl.faults.", 0) == 0 ||
         name.rfind("fl.agg.", 0) == 0;
}

TEST(ObsEndToEndTest, SnapshotDeterministicAcrossThreadCounts) {
  ObsGuard guard;
  obs::SetMetricsEnabled(true);

  auto run_with_threads = [&](int threads) {
    obs::MetricsRegistry::Global().Reset();
    fl::SetFlThreads(threads);
    auto server = MakeFedCross();
    server->Run(kRounds, 1);
    std::vector<obs::MetricSnapshot> all =
        obs::MetricsRegistry::Global().Snapshot();
    std::vector<obs::MetricSnapshot> kept;
    for (obs::MetricSnapshot& snap : all) {
      if (IsThreadCountInvariant(snap.name)) kept.push_back(std::move(snap));
    }
    return kept;
  };

  std::vector<obs::MetricSnapshot> seq = run_with_threads(1);
  std::vector<obs::MetricSnapshot> par = run_with_threads(4);

  ASSERT_FALSE(seq.empty());
  ASSERT_EQ(seq.size(), par.size());
  bool saw_nonzero = false;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].name, par[i].name);
    EXPECT_EQ(seq[i].count, par[i].count) << seq[i].name;
    EXPECT_EQ(seq[i].value, par[i].value) << seq[i].name;
    if (seq[i].count != 0 || seq[i].value != 0.0) saw_nonzero = true;
  }
  EXPECT_TRUE(saw_nonzero);  // the invariant subset actually measured things
}

TEST(ObsEndToEndTest, ThreadPoolEmitsSchedulingMetrics) {
  ObsGuard guard;
  obs::MetricsRegistry::Global().Reset();
  obs::SetMetricsEnabled(true);

  util::ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) {
    pool.Schedule([] {});
  }
  pool.Wait();

  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("util.pool.tasks").Value(),
      10);
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetHistogram("util.pool.task_ms")
                .TotalCount(),
            10);
}

TEST(ObsEndToEndTest, RoundEventsDisabledWritesNothing) {
  ObsGuard guard;
  obs::SetEventsPath("");
  EXPECT_FALSE(obs::EventsEnabled());
  auto server = MakeFedCross();
  server->Run(1, 1);
  EXPECT_EQ(obs::EventsEmitted(), 0);
}

}  // namespace
}  // namespace fedcross
