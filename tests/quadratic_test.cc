// Validates the paper's convergence analysis (Section III-C, Theorem 1) on
// the synthetic strongly-convex problem that matches its assumptions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/quadratic.h"

namespace fedcross::core {
namespace {

QuadraticProblem DefaultProblem(std::uint64_t seed = 1) {
  return QuadraticProblem::Make(/*dim=*/8, /*num_clients=*/6, /*mu=*/0.5,
                                /*l=*/2.0, /*heterogeneity=*/1.0, seed);
}

TEST(QuadraticProblemTest, OptimalPointHasZeroGradient) {
  QuadraticProblem problem = DefaultProblem();
  std::vector<double> w_star = problem.OptimalPoint();
  // Exact (noiseless) average gradient at the optimum is zero.
  util::Rng rng(1);
  std::vector<double> mean_grad(problem.dim(), 0.0);
  for (int i = 0; i < problem.num_clients(); ++i) {
    std::vector<double> grad =
        problem.ClientStochasticGrad(i, w_star, /*noise=*/0.0, rng);
    for (int d = 0; d < problem.dim(); ++d) mean_grad[d] += grad[d];
  }
  for (double g : mean_grad) EXPECT_NEAR(g / problem.num_clients(), 0.0, 1e-9);
}

TEST(QuadraticProblemTest, OptimalLossIsMinimal) {
  QuadraticProblem problem = DefaultProblem();
  std::vector<double> w_star = problem.OptimalPoint();
  double f_star = problem.OptimalLoss();
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> w = w_star;
    for (double& value : w) value += rng.Normal(0.0, 0.5);
    EXPECT_GE(problem.GlobalLoss(w), f_star - 1e-12);
  }
}

TEST(QuadraticProblemTest, ClientLossesDisagree) {
  // Heterogeneity: client optima differ, so per-client losses at the global
  // optimum are positive (Gamma > 0 in the paper's notation).
  QuadraticProblem problem = DefaultProblem();
  std::vector<double> w_star = problem.OptimalPoint();
  double max_loss = 0.0;
  for (int i = 0; i < problem.num_clients(); ++i) {
    max_loss = std::max(max_loss, problem.ClientLoss(i, w_star));
  }
  EXPECT_GT(max_loss, 0.01);
}

TEST(QuadraticSimTest, FedCrossConverges) {
  QuadraticProblem problem = DefaultProblem();
  QuadraticSimOptions options;
  options.fedcross = true;
  std::vector<double> gaps = RunQuadraticSimulation(problem, options, 200);
  EXPECT_LT(gaps.back(), gaps.front() * 0.05);
  EXPECT_LT(gaps.back(), 0.1);
}

TEST(QuadraticSimTest, FedAvgConverges) {
  QuadraticProblem problem = DefaultProblem();
  QuadraticSimOptions options;
  options.fedcross = false;
  std::vector<double> gaps = RunQuadraticSimulation(problem, options, 200);
  EXPECT_LT(gaps.back(), 0.1);
}

// Theorem 1: E[F(w_bar_t)] - F* = O(1/t). Check that gap(t) * t stays
// bounded over the tail of the run (ratio of late to mid values is O(1)).
TEST(QuadraticSimTest, TheoremOneRate) {
  QuadraticProblem problem = DefaultProblem(3);
  QuadraticSimOptions options;
  options.grad_noise = 0.05;
  std::vector<double> gaps = RunQuadraticSimulation(problem, options, 400);
  double mid = gaps[99] * 100;    // t ~ 100 rounds
  double late = gaps[399] * 400;  // t ~ 400 rounds
  // If convergence were slower than O(1/t), late/mid would blow up; if the
  // rate holds, the normalised gap stays within a small constant factor.
  EXPECT_LT(late, mid * 5.0 + 1.0);
}

TEST(QuadraticSimTest, GapDecreasesMonotonicallyInTrend) {
  QuadraticProblem problem = DefaultProblem(4);
  QuadraticSimOptions options;
  std::vector<double> gaps = RunQuadraticSimulation(problem, options, 300);
  // Compare block averages to smooth out SGD noise.
  auto block_mean = [&](int begin, int end) {
    double total = 0.0;
    for (int i = begin; i < end; ++i) total += gaps[i];
    return total / (end - begin);
  };
  EXPECT_GT(block_mean(0, 50), block_mean(100, 150));
  EXPECT_GT(block_mean(100, 150), block_mean(250, 300));
}

class AlphaConvergence : public ::testing::TestWithParam<double> {};

TEST_P(AlphaConvergence, FedCrossConvergesForAllAlpha) {
  QuadraticProblem problem = DefaultProblem(5);
  QuadraticSimOptions options;
  options.alpha = GetParam();
  std::vector<double> gaps = RunQuadraticSimulation(problem, options, 250);
  EXPECT_LT(gaps.back(), 0.2) << "alpha " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaConvergence,
                         ::testing::Values(0.5, 0.7, 0.9, 0.99));

TEST(QuadraticSimTest, NoiselessFedCrossReachesOptimum) {
  QuadraticProblem problem = DefaultProblem(6);
  QuadraticSimOptions options;
  options.grad_noise = 0.0;
  std::vector<double> gaps = RunQuadraticSimulation(problem, options, 400);
  EXPECT_LT(gaps.back(), 1e-3);
}

TEST(QuadraticSimTest, DeterministicForSeed) {
  QuadraticProblem problem = DefaultProblem(7);
  QuadraticSimOptions options;
  std::vector<double> a = RunQuadraticSimulation(problem, options, 50);
  std::vector<double> b = RunQuadraticSimulation(problem, options, 50);
  EXPECT_EQ(a, b);
}

// The motivating claim of Fig. 1: with heterogeneous clients, FedCross's
// averaged model ends at least as close to the global optimum as FedAvg's
// under the same step budget and noise (cross-aggregation does not hurt).
TEST(QuadraticSimTest, FedCrossCompetitiveWithFedAvg) {
  double fedcross_total = 0.0;
  double fedavg_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    QuadraticProblem problem = QuadraticProblem::Make(8, 6, 0.5, 2.0, 2.0,
                                                      seed);
    QuadraticSimOptions options;
    options.grad_noise = 0.1;
    options.fedcross = true;
    fedcross_total += RunQuadraticSimulation(problem, options, 200).back();
    options.fedcross = false;
    fedavg_total += RunQuadraticSimulation(problem, options, 200).back();
  }
  EXPECT_LT(fedcross_total, fedavg_total * 2.0 + 0.05);
}

}  // namespace
}  // namespace fedcross::core
