#ifndef FEDCROSS_TESTS_TEST_UTIL_H_
#define FEDCROSS_TESTS_TEST_UTIL_H_

#include <cmath>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace fedcross::testing {

// Relative-error comparison that tolerates tiny absolute values.
inline bool CloseRel(double a, double b, double rel_tol, double abs_tol) {
  double diff = std::abs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::abs(a), std::abs(b));
}

// Central-difference gradient check of a model under softmax cross-entropy.
// For every parameter tensor p, perturbs the model along p's own analytic
// gradient direction (restricted to p) and compares the numeric directional
// derivative to ||grad_p||. This exercises every coordinate of every layer's
// backward while staying well above float32 noise (unlike per-coordinate
// checks, which fail spuriously at near-zero-gradient coordinates).
// Returns the worst relative error across parameter tensors.
inline double CheckParamGradients(nn::Sequential& model, const Tensor& input,
                                  const std::vector<int>& labels,
                                  util::Rng& rng, int unused_samples = 0,
                                  float eps = 1e-4f) {
  (void)rng;
  (void)unused_samples;
  nn::CrossEntropyLoss criterion;

  model.ZeroGrad();
  Tensor logits = model.Forward(input, /*train=*/false);
  nn::LossResult loss = criterion.Compute(logits, labels);
  model.Backward(loss.grad_logits);

  double worst_rel = 0.0;
  for (nn::Param* param : model.Params()) {
    // Direction = grad_p / ||grad_p||; analytic derivative = ||grad_p||.
    double norm2 = param->grad.SquaredL2Norm();
    double norm = std::sqrt(norm2);
    // Skip near-dead tensors (e.g. ReLU-blocked biases): their directional
    // signal is below float32 loss resolution, so the check would only
    // measure noise. Live tensors of the same layer types are still checked.
    if (norm < 1e-2) continue;

    Tensor original = param->value;
    param->value.Axpy(eps / static_cast<float>(norm), param->grad);
    float loss_plus =
        criterion.Compute(model.Forward(input, false), labels, false).loss;
    param->value = original;
    param->value.Axpy(-eps / static_cast<float>(norm), param->grad);
    float loss_minus =
        criterion.Compute(model.Forward(input, false), labels, false).loss;
    param->value = original;

    double numeric =
        (static_cast<double>(loss_plus) - loss_minus) / (2.0 * eps);
    double rel = std::abs(numeric - norm) / std::max(norm, 1e-4);
    worst_rel = std::max(worst_rel, rel);
  }
  return worst_rel;
}

// Tiny linearly separable 2-class dataset in `dim` dimensions (class mean
// +-1 on every axis), for convergence smoke tests.
inline std::shared_ptr<data::InMemoryDataset> MakeToyDataset(
    int per_class, int dim, float noise, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> features;
  std::vector<int> labels;
  for (int k = 0; k < 2; ++k) {
    float mean = k == 0 ? -1.0f : 1.0f;
    for (int i = 0; i < per_class; ++i) {
      for (int d = 0; d < dim; ++d) {
        features.push_back(mean + static_cast<float>(rng.Normal(0.0, noise)));
      }
      labels.push_back(k);
    }
  }
  return std::make_shared<data::InMemoryDataset>(
      Tensor::Shape{dim}, std::move(features), std::move(labels), 2);
}

}  // namespace fedcross::testing

#endif  // FEDCROSS_TESTS_TEST_UTIL_H_
