#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <set>

#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace fedcross::util {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad alpha");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(0), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng base(5);
  Rng fork1 = base.Fork(1);
  Rng fork2 = base.Fork(2);
  EXPECT_NE(fork1.NextUint64(), fork2.NextUint64());
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformMoments) {
  Rng rng(13);
  double total = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) total += rng.Uniform();
  EXPECT_NEAR(total / kSamples, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double total = 0.0;
  double total_sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    double x = rng.Normal(2.0, 3.0);
    total += x;
    total_sq += x * x;
  }
  double mean = total / kSamples;
  double var = total_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, GammaMean) {
  Rng rng(19);
  for (double shape : {0.5, 1.0, 3.0}) {
    double total = 0.0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) total += rng.Gamma(shape);
    EXPECT_NEAR(total / kSamples, shape, 0.1 * shape + 0.05) << shape;
  }
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(23);
  for (double alpha : {0.1, 0.5, 1.0, 10.0}) {
    std::vector<double> sample = rng.Dirichlet(alpha, 10);
    double total = std::accumulate(sample.begin(), sample.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (double p : sample) EXPECT_GE(p, 0.0);
  }
}

TEST(RngTest, DirichletSmallAlphaIsSkewed) {
  Rng rng(29);
  // At alpha=0.05 the mass should concentrate: max component usually > 0.5.
  int concentrated = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> sample = rng.Dirichlet(0.05, 10);
    double max_p = *std::max_element(sample.begin(), sample.end());
    if (max_p > 0.5) ++concentrated;
  }
  EXPECT_GT(concentrated, 35);
}

TEST(RngTest, DirichletLargeAlphaIsUniform) {
  Rng rng(31);
  std::vector<double> mean(10, 0.0);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> sample = rng.Dirichlet(100.0, 10);
    for (int i = 0; i < 10; ++i) mean[i] += sample[i];
  }
  for (double m : mean) EXPECT_NEAR(m / 200.0, 0.1, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(37);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 4000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  rng.Shuffle(values);
  std::set<int> seen(values.begin(), values.end());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> sample = rng.SampleWithoutReplacement(50, 10);
    std::set<int> seen(sample.begin(), sample.end());
    EXPECT_EQ(seen.size(), 10u);
    for (int s : sample) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 50);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(47);
  std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<int> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementUniform) {
  Rng rng(53);
  std::vector<int> hits(10, 0);
  for (int trial = 0; trial < 5000; ++trial) {
    for (int s : rng.SampleWithoutReplacement(10, 3)) ++hits[s];
  }
  for (int h : hits) EXPECT_NEAR(h, 1500, 150);
}

// ----------------------------------------------------------------- Flags

TEST(FlagParserTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--rounds=40", "--alpha", "0.99", "--verbose"};
  FlagParser flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("rounds", 0), 40);
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 0.99);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.ok());
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  FlagParser flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("rounds", 7), 7);
  EXPECT_EQ(flags.GetString("name", "x"), "x");
  EXPECT_FALSE(flags.GetBool("flag", false));
}

TEST(FlagParserTest, RejectsMalformedInt) {
  const char* argv[] = {"prog", "--rounds=abc"};
  FlagParser flags(2, const_cast<char**>(argv));
  flags.GetInt("rounds", 0);
  EXPECT_FALSE(flags.ok());
}

TEST(FlagParserTest, RejectsPositional) {
  const char* argv[] = {"prog", "positional"};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_FALSE(flags.ok());
}

TEST(FlagParserTest, ReportsUnusedFlags) {
  const char* argv[] = {"prog", "--known=1", "--typo=2"};
  FlagParser flags(3, const_cast<char**>(argv));
  flags.GetInt("known", 0);
  std::vector<std::string> unused = flags.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagParserTest, BoolVariants) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes"};
  FlagParser flags(4, const_cast<char**>(argv));
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
}

// ------------------------------------------------------------------- CSV

TEST(CsvWriterTest, WritesAndQuotes) {
  std::string path = ::testing::TempDir() + "/csv_test.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.WriteRow({"plain", "with,comma", "with\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"with,comma\",\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, FieldFormatting) {
  EXPECT_EQ(CsvWriter::Field(42), "42");
  EXPECT_EQ(CsvWriter::Field(0.5), "0.5");
}

// --------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table({"Method", "Acc"});
  table.AddRow({"FedAvg", "46.12"});
  table.AddRow({"FedCross", "55.70"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| Method   | Acc   |"), std::string::npos);
  EXPECT_NE(out.find("| FedCross | 55.70 |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2);
}

TEST(TablePrinterTest, MeanStdFormat) {
  EXPECT_EQ(TablePrinter::MeanStd(55.701, 0.736), "55.70 +- 0.74");
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 3), "3.142");
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&hits](int i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

}  // namespace
}  // namespace fedcross::util
