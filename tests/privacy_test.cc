// Tests for the privacy subsystem (src/privacy): the subsampled-Gaussian
// RDP accountant against hand-computed closed forms, DP-SGD sanitisation
// edge cases (zero-norm updates, clip without noise, non-finite uploads
// meeting server screening), secure-aggregation masking — exact pairwise
// cancellation, dropout recovery, and the masking-on == masking-off
// bit-identity across all six algorithms — and the FCRS v5 checkpoint
// round trip of the accountant ledger.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>

#include "comm/wire.h"
#include "core/fedcross.h"
#include "fl/clusamp.h"
#include "fl/faults.h"
#include "fl/fedavg.h"
#include "fl/fedgen.h"
#include "fl/scaffold.h"
#include "nn/linear.h"
#include "privacy/accountant.h"
#include "privacy/dp.h"
#include "privacy/masking.h"
#include "util/rng.h"

namespace fedcross {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

models::ModelFactory LinearFactory(int dim, std::uint64_t seed = 1) {
  return [dim, seed]() {
    util::Rng rng(seed);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(dim, 2, rng));
    return model;
  };
}

data::FederatedDataset MakeToyFederated(int num_clients, int per_client,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  data::FederatedDataset federated;
  federated.num_classes = 2;
  auto gen = [&](int count, std::vector<float>& features,
                 std::vector<int>& labels) {
    for (int i = 0; i < count; ++i) {
      int k = static_cast<int>(rng.UniformInt(2));
      float mean = k == 0 ? -1.0f : 1.0f;
      for (int d = 0; d < 4; ++d) {
        features.push_back(mean + static_cast<float>(rng.Normal(0.0, 0.5)));
      }
      labels.push_back(k);
    }
  };
  for (int c = 0; c < num_clients; ++c) {
    std::vector<float> features;
    std::vector<int> labels;
    gen(per_client, features, labels);
    federated.client_train.push_back(std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{4}, std::move(features), std::move(labels), 2));
  }
  {
    std::vector<float> features;
    std::vector<int> labels;
    gen(40, features, labels);
    federated.test = std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{4}, std::move(features), std::move(labels), 2);
  }
  return federated;
}

fl::AlgorithmConfig ToyConfig() {
  fl::AlgorithmConfig config;
  config.clients_per_round = 4;
  config.train.local_epochs = 2;
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.seed = 17;
  return config;
}

// ---------------------------------------------------------------------------
// RDP accountant
// ---------------------------------------------------------------------------

TEST(RdpAccountantTest, NoSamplingMeansNoPrivacyLoss) {
  EXPECT_EQ(privacy::RdpAccountant::SubsampledGaussianRdp(0.0, 1.0, 2), 0.0);
  EXPECT_EQ(privacy::RdpAccountant::SubsampledGaussianRdp(0.0, 0.5, 64), 0.0);
}

TEST(RdpAccountantTest, NoNoiseMeansInfiniteLoss) {
  EXPECT_EQ(privacy::RdpAccountant::SubsampledGaussianRdp(0.5, 0.0, 2), kInf);
  EXPECT_EQ(privacy::RdpAccountant::SubsampledGaussianRdp(0.5, -1.0, 8), kInf);
}

TEST(RdpAccountantTest, FullParticipationIsPlainGaussianMechanism) {
  // q = 1: rdp(alpha) = alpha / (2 sigma^2), the classic Gaussian bound.
  for (double sigma : {0.5, 1.0, 2.0, 4.0}) {
    for (int alpha : {2, 3, 16, 64, 1024}) {
      EXPECT_DOUBLE_EQ(
          privacy::RdpAccountant::SubsampledGaussianRdp(1.0, sigma, alpha),
          alpha / (2.0 * sigma * sigma))
          << "sigma=" << sigma << " alpha=" << alpha;
    }
  }
}

TEST(RdpAccountantTest, OrderTwoMatchesPublishedClosedForm) {
  // The alpha = 2 moment has the closed form rdp = log(1 + q^2 (e^{1/s^2} -
  // 1)) (Mironov, Talwar & Zhang 2019) — an independent hand computation of
  // the same quantity the log-sum-exp evaluates.
  for (double q : {0.001, 0.01, 0.1, 0.5, 0.9}) {
    for (double sigma : {0.5, 1.0, 2.0, 4.0}) {
      double expected =
          std::log1p(q * q * std::expm1(1.0 / (sigma * sigma)));
      EXPECT_NEAR(
          privacy::RdpAccountant::SubsampledGaussianRdp(q, sigma, 2),
          expected, 1e-12 + 1e-9 * expected)
          << "q=" << q << " sigma=" << sigma;
    }
  }
}

TEST(RdpAccountantTest, SmallSamplingRateQuadraticAmplification) {
  // For q << 1 and moderate alpha the leading term is q^2 alpha / sigma^2
  // (privacy amplification by subsampling); the exact bound must sit within
  // a few percent of it at q = 1e-3.
  const double q = 1e-3;
  const double sigma = 1.0;
  for (int alpha : {2, 4, 8}) {
    double exact = privacy::RdpAccountant::SubsampledGaussianRdp(q, sigma,
                                                                 alpha);
    double leading = q * q * alpha / (sigma * sigma);
    EXPECT_GT(exact, 0.2 * leading);
    EXPECT_LT(exact, 5.0 * leading);
  }
}

TEST(RdpAccountantTest, EpsilonHandComputedSingleGaussianRound) {
  // One q = 1, sigma = 1 round at delta = 1e-5: eps = min over alpha of
  // alpha/2 + log(1e5)/(alpha - 1). The continuous minimiser is alpha = 1 +
  // sqrt(2 log 1e5) ~ 5.80, so the integer grid's minimum lands at alpha =
  // 6: eps = 3 + log(1e5)/5.
  privacy::RdpAccountant accountant;
  accountant.AccumulateRound(1.0, 1.0);
  const double expected = 3.0 + std::log(1e5) / 5.0;
  EXPECT_NEAR(accountant.Epsilon(1e-5), expected, 1e-12);
  // Sanity-check the grid minimum really is alpha = 6.
  EXPECT_LT(expected, 2.5 + std::log(1e5) / 4.0);  // alpha = 5
  EXPECT_LT(expected, 3.5 + std::log(1e5) / 6.0);  // alpha = 7
}

TEST(RdpAccountantTest, EpsilonComposesMonotonically) {
  privacy::RdpAccountant accountant;
  EXPECT_EQ(accountant.Epsilon(1e-5), 0.0);  // empty ledger
  double previous = 0.0;
  for (int round = 0; round < 32; ++round) {
    accountant.AccumulateRound(0.1, 1.2);
    double eps = accountant.Epsilon(1e-5);
    EXPECT_GT(eps, previous);
    EXPECT_TRUE(std::isfinite(eps));
    previous = eps;
  }
  EXPECT_EQ(accountant.rounds(), 32);
}

TEST(RdpAccountantTest, MoreNoiseMeansSmallerEpsilon) {
  auto epsilon_after = [](double sigma, int rounds) {
    privacy::RdpAccountant accountant;
    for (int r = 0; r < rounds; ++r) accountant.AccumulateRound(0.2, sigma);
    return accountant.Epsilon(1e-5);
  };
  EXPECT_GT(epsilon_after(0.8, 10), epsilon_after(1.6, 10));
  EXPECT_GT(epsilon_after(1.6, 10), epsilon_after(3.2, 10));
}

TEST(RdpAccountantTest, UnnoisedRoundPoisonsTheLedger) {
  privacy::RdpAccountant accountant;
  accountant.AccumulateRound(0.5, 1.0);
  accountant.AccumulateRound(0.5, 0.0);  // a release without noise
  EXPECT_EQ(accountant.Epsilon(1e-5), kInf);
}

TEST(RdpAccountantTest, RestoreReproducesEpsilonBitExactly) {
  privacy::RdpAccountant accountant;
  for (int r = 0; r < 7; ++r) accountant.AccumulateRound(0.15, 1.1);
  privacy::RdpAccountant restored;
  restored.Restore(accountant.order_totals(), accountant.rounds());
  EXPECT_EQ(restored.Epsilon(1e-5), accountant.Epsilon(1e-5));
  EXPECT_EQ(restored.rounds(), accountant.rounds());
  restored.Reset();
  EXPECT_EQ(restored.Epsilon(1e-5), 0.0);
  EXPECT_EQ(restored.rounds(), 0);
}

// ---------------------------------------------------------------------------
// DP-SGD sanitisation edge cases
// ---------------------------------------------------------------------------

TEST(SanitizeUpdateTest, ZeroNormUpdateIsNeverClipped) {
  fl::FlatParams reference = {0.5f, -1.0f, 2.0f};
  fl::FlatParams params = reference;  // the client learned nothing
  privacy::DpOptions options;
  options.clip_norm = 1.0f;
  util::Rng rng(3);
  EXPECT_FALSE(privacy::SanitizeUpdateInPlace(reference, params, options,
                                              rng));
  EXPECT_EQ(params, reference);  // clip-only: bitwise no-op
}

TEST(SanitizeUpdateTest, ZeroNormUpdateStillGetsNoise) {
  fl::FlatParams reference(64, 0.25f);
  fl::FlatParams params = reference;
  privacy::DpOptions options;
  options.clip_norm = 1.0f;
  options.noise_multiplier = 1.0f;
  util::Rng rng(11);
  EXPECT_FALSE(privacy::SanitizeUpdateInPlace(reference, params, options,
                                              rng));
  // The mechanism must add noise even to a silent client, or silence itself
  // would leak; the result differs from the reference.
  EXPECT_NE(params, reference);
}

TEST(SanitizeUpdateTest, ClipWithoutNoiseLandsExactlyOnTheBound) {
  fl::FlatParams reference(32, 0.0f);
  fl::FlatParams params(32, 1.0f);  // norm = sqrt(32) ~ 5.66
  privacy::DpOptions options;
  options.clip_norm = 1.5f;
  util::Rng rng(5);
  EXPECT_TRUE(privacy::SanitizeUpdateInPlace(reference, params, options,
                                             rng));
  EXPECT_NEAR(privacy::UpdateNorm(reference, params), 1.5, 1e-4);
  // All coordinates moved the same way: pure rescaling, no noise.
  for (float v : params) EXPECT_FLOAT_EQ(v, params[0]);
}

TEST(SanitizeUpdateTest, UpdateInsideTheBoundPassesUntouched) {
  fl::FlatParams reference(8, 0.0f);
  fl::FlatParams params(8, 0.1f);  // norm ~ 0.283
  privacy::DpOptions options;
  options.clip_norm = 1.0f;
  util::Rng rng(7);
  EXPECT_FALSE(privacy::SanitizeUpdateInPlace(reference, params, options,
                                              rng));
  for (float v : params) EXPECT_FLOAT_EQ(v, 0.1f);
}

TEST(SanitizeUpdateTest, NonFiniteUploadSurvivesToScreening) {
  // A NaN-poisoned upload has a NaN norm; every comparison with the clip
  // bound is false, so the mechanism must not "launder" the corruption into
  // a finite value — server-side screening is the component that catches
  // it, and it must still fire after sanitisation.
  fl::FlatParams reference(8, 0.0f);
  fl::FlatParams params(8, 0.5f);
  params[3] = std::numeric_limits<float>::quiet_NaN();
  privacy::DpOptions options;
  options.clip_norm = 1.0f;
  util::Rng rng(13);
  EXPECT_FALSE(privacy::SanitizeUpdateInPlace(reference, params, options,
                                              rng));
  EXPECT_TRUE(std::isnan(params[3]));

  fl::ScreeningOptions screening;
  screening.check_finite = true;
  EXPECT_FALSE(fl::ScreenUpload(reference, params, screening).ok());
}

TEST(SanitizeUpdateTest, DisabledMechanismIsIdentity) {
  fl::FlatParams reference(4, 1.0f);
  fl::FlatParams params(4, 9.0f);
  privacy::DpOptions options;  // clip_norm = 0: disabled
  util::Rng rng(1);
  std::uint64_t before = rng.NextUint64();
  util::Rng fresh(1);
  EXPECT_FALSE(privacy::SanitizeUpdateInPlace(reference, params, options,
                                              fresh));
  for (float v : params) EXPECT_FLOAT_EQ(v, 9.0f);
  // And it consumed nothing from the stream.
  EXPECT_EQ(fresh.NextUint64(), before);
}

TEST(SanitizeUpdateTest, PrivacySeedIsItsOwnStream) {
  // The privacy stream must collide with neither the training nor the
  // fault derivation for the same (seed, round, salt, slot).
  std::uint64_t privacy_seed = privacy::PrivacySeed(17, 3, 1, 2);
  EXPECT_NE(privacy_seed, fl::FaultSeed(17, 3, 1, 2));
  EXPECT_NE(privacy_seed, privacy::PrivacySeed(17, 3, 1, 3));
  EXPECT_NE(privacy_seed, privacy::PrivacySeed(17, 4, 1, 2));
  EXPECT_EQ(privacy_seed, privacy::PrivacySeed(17, 3, 1, 2));
}

// ---------------------------------------------------------------------------
// Secure-aggregation masking
// ---------------------------------------------------------------------------

TEST(MaskingTest, FixedPointEncodeBasics) {
  const int bits = 20;
  EXPECT_EQ(privacy::FixedPointEncode(0.0f, bits), 0u);
  EXPECT_EQ(privacy::FixedPointEncode(1.0f, bits),
            static_cast<std::uint64_t>(1) << bits);
  // Negative values wrap in the mod-2^64 domain.
  EXPECT_EQ(privacy::FixedPointEncode(-1.0f, bits),
            static_cast<std::uint64_t>(
                -(static_cast<std::int64_t>(1) << bits)));
  // Non-finite uploads (screening disabled) quantise to zero, not UB.
  EXPECT_EQ(
      privacy::FixedPointEncode(std::numeric_limits<float>::quiet_NaN(),
                                bits),
      0u);
  EXPECT_EQ(
      privacy::FixedPointEncode(std::numeric_limits<float>::infinity(),
                                bits),
      0u);
  // Huge magnitudes saturate at +/- 2^62 instead of overflowing llround.
  EXPECT_EQ(privacy::FixedPointEncode(1e30f, bits),
            static_cast<std::uint64_t>(std::int64_t{1} << 62));
  EXPECT_EQ(privacy::FixedPointEncode(-1e30f, bits),
            static_cast<std::uint64_t>(-(std::int64_t{1} << 62)));
}

TEST(MaskingTest, PairSeedsAreDistinctPerPairAndRound) {
  EXPECT_NE(privacy::PairSeed(9, 1, 0, 0, 1), privacy::PairSeed(9, 1, 0, 0, 2));
  EXPECT_NE(privacy::PairSeed(9, 1, 0, 0, 1), privacy::PairSeed(9, 2, 0, 0, 1));
  EXPECT_NE(privacy::PairSeed(9, 1, 0, 0, 1), privacy::PairSeed(9, 1, 1, 0, 1));
  EXPECT_EQ(privacy::PairSeed(9, 1, 0, 0, 1), privacy::PairSeed(9, 1, 0, 0, 1));
}

TEST(MaskingTest, FullCohortCancelsExactly) {
  util::Rng rng(21);
  std::vector<fl::FlatParams> uploads(5, fl::FlatParams(33));
  for (auto& upload : uploads) {
    for (float& v : upload) v = static_cast<float>(rng.Normal(0.0, 2.0));
  }
  std::vector<const fl::FlatParams*> pointers;
  for (const auto& upload : uploads) pointers.push_back(&upload);
  privacy::MaskOptions options;
  options.enabled = true;
  privacy::MaskedSumReport report =
      privacy::SimulateMaskedAggregation(7, 3, 0, pointers, options);
  EXPECT_TRUE(report.exact);
  EXPECT_EQ(report.cohort, 5);
  EXPECT_EQ(report.survivors, 5);
  EXPECT_EQ(report.pairs, 10);  // C(5,2)
  EXPECT_EQ(report.recovered_pairs, 0);
  EXPECT_EQ(report.recovery_seed_bytes, 0u);
}

TEST(MaskingTest, DropoutsAreRecoveredFromRevealedSeeds) {
  util::Rng rng(22);
  std::vector<fl::FlatParams> uploads(6, fl::FlatParams(17));
  for (auto& upload : uploads) {
    for (float& v : upload) v = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  std::vector<const fl::FlatParams*> pointers;
  for (const auto& upload : uploads) pointers.push_back(&upload);
  pointers[1] = nullptr;  // two members drop mid-round
  pointers[4] = nullptr;
  privacy::MaskOptions options;
  options.enabled = true;
  privacy::MaskedSumReport report =
      privacy::SimulateMaskedAggregation(7, 5, 2, pointers, options);
  EXPECT_TRUE(report.exact);
  EXPECT_EQ(report.survivors, 4);
  // Survivor-survivor pairs C(4,2)=6 plus 2 dropouts x 4 survivors = 8
  // dangling pairs; the dropout-dropout pair exchanged nothing.
  EXPECT_EQ(report.pairs, 14);
  EXPECT_EQ(report.recovered_pairs, 8);
  EXPECT_EQ(report.recovery_seed_bytes, 8u * 8u);
}

TEST(MaskingTest, EmptyAndSingletonCohortsAreTriviallyExact) {
  privacy::MaskOptions options;
  options.enabled = true;
  std::vector<const fl::FlatParams*> nobody;
  EXPECT_TRUE(privacy::SimulateMaskedAggregation(1, 0, 0, nobody, options)
                  .exact);
  fl::FlatParams lone(9, 1.25f);
  std::vector<const fl::FlatParams*> one = {&lone};
  privacy::MaskedSumReport report =
      privacy::SimulateMaskedAggregation(1, 0, 0, one, options);
  EXPECT_TRUE(report.exact);
  EXPECT_EQ(report.pairs, 0);
}

// ---------------------------------------------------------------------------
// End-to-end: the overlay across every algorithm, DP determinism, FCRS v5
// ---------------------------------------------------------------------------

enum class Method { kFedAvg, kFedProx, kScaffold, kFedGen, kCluSamp,
                    kFedCross };

std::unique_ptr<fl::FlAlgorithm> MakeAlgorithm(Method method,
                                               const fl::AlgorithmConfig&
                                                   config) {
  data::FederatedDataset data = MakeToyFederated(10, 30, 3);
  models::ModelFactory factory = LinearFactory(4);
  switch (method) {
    case Method::kFedAvg:
      return std::make_unique<fl::FedAvg>(config, std::move(data), factory);
    case Method::kFedProx:
      return std::make_unique<fl::FedProx>(config, std::move(data), factory,
                                           0.1f);
    case Method::kScaffold:
      return std::make_unique<fl::Scaffold>(config, std::move(data), factory);
    case Method::kFedGen:
      return std::make_unique<fl::FedGen>(config, std::move(data), factory);
    case Method::kCluSamp:
      return std::make_unique<fl::CluSamp>(config, std::move(data), factory);
    case Method::kFedCross: {
      core::FedCrossOptions options;
      options.alpha = 0.9;
      return std::make_unique<core::FedCross>(config, std::move(data),
                                              factory, options);
    }
  }
  return nullptr;
}

const char* MethodName(Method method) {
  switch (method) {
    case Method::kFedAvg: return "fedavg";
    case Method::kFedProx: return "fedprox";
    case Method::kScaffold: return "scaffold";
    case Method::kFedGen: return "fedgen";
    case Method::kCluSamp: return "clusamp";
    case Method::kFedCross: return "fedcross";
  }
  return "?";
}

TEST(MaskingOverlayTest, MaskedRunsBitIdenticalAcrossAllSixAlgorithms) {
  // Masking is a verification overlay: the fixed-point masked sum is
  // FC_CHECKed against the direct sum inside the run, and the float
  // aggregation path is untouched — so a masked run's global model must be
  // bit-identical to the unmasked run's. Dropouts make some rounds exercise
  // the recovery path on the way.
  const Method methods[] = {Method::kFedAvg, Method::kFedProx,
                            Method::kScaffold, Method::kFedGen,
                            Method::kCluSamp, Method::kFedCross};
  for (Method method : methods) {
    SCOPED_TRACE(MethodName(method));
    fl::AlgorithmConfig config = ToyConfig();
    config.faults.profile.dropout_prob = 0.3;  // exercises mask recovery

    auto plain = MakeAlgorithm(method, config);
    plain->Run(3, 3);

    config.secure_agg.enabled = true;
    auto masked = MakeAlgorithm(method, config);
    masked->Run(3, 3);

    fl::FlatParams a = plain->GlobalParams();
    fl::FlatParams b = masked->GlobalParams();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));

    const fl::PrivacyStats& stats = masked->privacy_stats();
    EXPECT_GT(stats.mask_pairs, 0);
    EXPECT_EQ(plain->privacy_stats().mask_pairs, 0);
    if (plain->fault_stats().dropouts > 0) {
      EXPECT_GT(stats.mask_recoveries, 0);
    }
  }
}

TEST(MaskingOverlayTest, RecoveryActuallyFiresInTheSweep) {
  // Guard against the dropout draw never firing: under a 30% dropout rate
  // and 3 rounds x 4 clients, at least one cohort must have lost a member
  // (this pins the seed-dependent behaviour the bit-identity test relies
  // on).
  fl::AlgorithmConfig config = ToyConfig();
  config.faults.profile.dropout_prob = 0.3;
  config.secure_agg.enabled = true;
  auto masked = MakeAlgorithm(Method::kFedAvg, config);
  masked->Run(3, 3);
  EXPECT_GT(masked->fault_stats().dropouts, 0);
  EXPECT_GT(masked->privacy_stats().mask_recoveries, 0);
}

TEST(MaskingOverlayTest, ComposesWithLossyCodecAndScreening) {
  fl::AlgorithmConfig config = ToyConfig();
  config.codec.scheme = comm::Scheme::kInt8TopK;
  config.codec.topk_fraction = 0.25;
  config.screening.check_finite = true;
  config.faults.profile.dropout_prob = 0.25;

  auto plain = MakeAlgorithm(Method::kFedCross, config);
  plain->Run(3, 3);

  config.secure_agg.enabled = true;
  auto masked = MakeAlgorithm(Method::kFedCross, config);
  masked->Run(3, 3);

  fl::FlatParams a = plain->GlobalParams();
  fl::FlatParams b = masked->GlobalParams();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
  EXPECT_GT(masked->privacy_stats().mask_pairs, 0);
}

TEST(DpEndToEndTest, EpsilonGrowsAndUsesTheActualSamplingRate) {
  fl::AlgorithmConfig config = ToyConfig();
  config.dp.clip_norm = 1.0f;
  config.dp.noise_multiplier = 1.2f;
  config.dp.delta = 1e-5;
  auto server = MakeAlgorithm(Method::kFedAvg, config);
  server->Run(4, 4);

  // 4 rounds at q = K/N = 4/10 composed through the accountant (sigma goes
  // through the same float32 config field the server reads).
  privacy::RdpAccountant expected;
  for (int r = 0; r < 4; ++r) {
    expected.AccumulateRound(0.4, static_cast<double>(1.2f));
  }
  EXPECT_EQ(server->accountant().rounds(), 4);
  EXPECT_EQ(server->privacy_epsilon(), expected.Epsilon(1e-5));
  EXPECT_TRUE(std::isfinite(server->privacy_epsilon()));
}

TEST(DpEndToEndTest, ClipOnlyRunLeavesTheLedgerEmpty) {
  fl::AlgorithmConfig config = ToyConfig();
  config.dp.clip_norm = 0.05f;  // aggressive clip, no noise
  auto server = MakeAlgorithm(Method::kFedAvg, config);
  server->Run(3, 3);
  EXPECT_EQ(server->accountant().rounds(), 0);
  EXPECT_GT(server->privacy_stats().clipped, 0);
}

TEST(CheckpointV5Test, EpsilonSurvivesKillAndResumeBitExactly) {
  const std::string path = TempPath("privacy_v5.ckpt");
  fl::AlgorithmConfig config = ToyConfig();
  config.dp.clip_norm = 1.0f;
  config.dp.noise_multiplier = 1.5f;
  config.secure_agg.enabled = true;
  config.faults.profile.dropout_prob = 0.2;

  auto full = MakeAlgorithm(Method::kFedCross, config);
  full->Run(6, 6);

  {
    auto first = MakeAlgorithm(Method::kFedCross, config);
    first->EnableAutoCheckpoint(path, 1);
    first->Run(3, 6);
    // The instance dies here; only the FCRS v5 file survives.
  }

  auto resumed = MakeAlgorithm(Method::kFedCross, config);
  ASSERT_TRUE(resumed->LoadCheckpoint(path).ok());
  EXPECT_EQ(resumed->completed_rounds(), 3);
  EXPECT_EQ(resumed->accountant().rounds(), 3);
  resumed->Run(6, 6);

  // The resumed ledger composed rounds 4..6 on top of the restored totals;
  // bit-exact restore means bit-equal epsilon and bit-equal model.
  EXPECT_EQ(resumed->privacy_epsilon(), full->privacy_epsilon());
  EXPECT_EQ(resumed->accountant().order_totals(),
            full->accountant().order_totals());
  EXPECT_EQ(resumed->privacy_stats().clipped,
            full->privacy_stats().clipped);
  EXPECT_EQ(resumed->privacy_stats().mask_pairs,
            full->privacy_stats().mask_pairs);
  fl::FlatParams a = full->GlobalParams();
  fl::FlatParams b = resumed->GlobalParams();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
  std::remove(path.c_str());
}

TEST(CheckpointV5Test, V4DowngradeStillLoadsWithEmptyLedger) {
  const std::string path = TempPath("privacy_v4.ckpt");
  fl::AlgorithmConfig config = ToyConfig();  // privacy off: v4-compatible
  auto writer = MakeAlgorithm(Method::kFedAvg, config);
  writer->Run(2, 2);
  ASSERT_TRUE(writer->SaveCheckpoint(path, 4).ok());

  auto reader = MakeAlgorithm(Method::kFedAvg, config);
  ASSERT_TRUE(reader->LoadCheckpoint(path).ok());
  EXPECT_EQ(reader->completed_rounds(), 2);
  EXPECT_EQ(reader->accountant().rounds(), 0);
  EXPECT_EQ(reader->privacy_stats().clipped, 0);
  std::remove(path.c_str());
}

TEST(CheckpointV5Test, DpConfigPerturbsTheFingerprint) {
  const std::string path = TempPath("privacy_fp.ckpt");
  fl::AlgorithmConfig config = ToyConfig();
  config.dp.clip_norm = 1.0f;
  config.dp.noise_multiplier = 1.0f;
  auto writer = MakeAlgorithm(Method::kFedAvg, config);
  writer->Run(2, 2);
  ASSERT_TRUE(writer->SaveCheckpoint(path).ok());

  // A run with different DP parameters must refuse the checkpoint: resuming
  // it would mis-account the spent budget.
  fl::AlgorithmConfig other = ToyConfig();
  other.dp.clip_norm = 1.0f;
  other.dp.noise_multiplier = 2.0f;
  auto reader = MakeAlgorithm(Method::kFedAvg, other);
  EXPECT_FALSE(reader->LoadCheckpoint(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedcross
