#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "core/fedcross.h"
#include "nn/linear.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace fedcross::core {
namespace {

using fl::AlgorithmConfig;
using fl::FlatParams;

models::ModelFactory LinearFactory(int dim, std::uint64_t seed = 1) {
  return [dim, seed]() {
    util::Rng rng(seed);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(dim, 2, rng));
    return model;
  };
}

data::FederatedDataset MakeToyFederated(int num_clients, int per_client,
                                        int dim, bool label_skew,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  data::FederatedDataset federated;
  federated.num_classes = 2;
  auto gen_example = [&](int k, std::vector<float>& features) {
    float mean = k == 0 ? -1.0f : 1.0f;
    for (int d = 0; d < dim; ++d) {
      features.push_back(mean + static_cast<float>(rng.Normal(0.0, 0.6)));
    }
  };
  for (int c = 0; c < num_clients; ++c) {
    std::vector<float> features;
    std::vector<int> labels;
    for (int i = 0; i < per_client; ++i) {
      int k = label_skew ? (rng.Uniform() < 0.9 ? c % 2 : 1 - c % 2)
                         : static_cast<int>(rng.UniformInt(2));
      gen_example(k, features);
      labels.push_back(k);
    }
    federated.client_train.push_back(std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{dim}, std::move(features), std::move(labels), 2));
  }
  std::vector<float> features;
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) {
    gen_example(i % 2, features);
    labels.push_back(i % 2);
  }
  federated.test = std::make_shared<data::InMemoryDataset>(
      Tensor::Shape{dim}, std::move(features), std::move(labels), 2);
  return federated;
}

AlgorithmConfig ToyConfig(int k = 4) {
  AlgorithmConfig config;
  config.clients_per_round = k;
  config.train.local_epochs = 2;
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.seed = 17;
  return config;
}

FedCross MakeToyFedCross(FedCrossOptions options, int k = 4,
                         bool label_skew = true) {
  return FedCross(ToyConfig(k), MakeToyFederated(8, 40, 4, label_skew, 41),
                  LinearFactory(4), options);
}

// --------------------------------------------------------- Strategy names

TEST(SelectionStrategyTest, NameRoundTrip) {
  for (SelectionStrategy strategy :
       {SelectionStrategy::kInOrder, SelectionStrategy::kHighestSimilarity,
        SelectionStrategy::kLowestSimilarity}) {
    auto parsed = ParseSelectionStrategy(SelectionStrategyName(strategy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), strategy);
  }
}

TEST(SelectionStrategyTest, ParseAliases) {
  EXPECT_EQ(ParseSelectionStrategy("inorder").value(),
            SelectionStrategy::kInOrder);
  EXPECT_EQ(ParseSelectionStrategy("lowest").value(),
            SelectionStrategy::kLowestSimilarity);
  EXPECT_EQ(ParseSelectionStrategy("highest").value(),
            SelectionStrategy::kHighestSimilarity);
  EXPECT_FALSE(ParseSelectionStrategy("random").ok());
}

// ------------------------------------------------------------- CrossAggr

TEST(CrossAggrTest, ConvexCombination) {
  FlatParams a = {1.0f, 2.0f};
  FlatParams b = {3.0f, 6.0f};
  FlatParams fused = FedCross::CrossAggregate(a, b, 0.75);
  EXPECT_FLOAT_EQ(fused[0], 0.75f * 1.0f + 0.25f * 3.0f);
  EXPECT_FLOAT_EQ(fused[1], 0.75f * 2.0f + 0.25f * 6.0f);
}

TEST(CrossAggrTest, AlphaOneKeepsModel) {
  FlatParams a = {1.0f, 2.0f};
  FlatParams b = {9.0f, 9.0f};
  // alpha must be < 1 in options, but CrossAggregate itself handles any
  // weight; 0.999999 is effectively identity.
  FlatParams fused = FedCross::CrossAggregate(a, b, 1.0);
  EXPECT_EQ(fused, a);
}

// Lemma 3.4 / Eq. 2 of the paper: in-order cross-aggregation preserves the
// model mean (every uploaded model is used exactly once as collaborator).
TEST(CrossAggrTest, InOrderPreservesMeanProperty) {
  util::Rng rng(1);
  int k = 6;
  std::size_t dim = 20;
  std::vector<FlatParams> uploaded(k, FlatParams(dim));
  for (auto& model : uploaded) {
    for (float& value : model) value = static_cast<float>(rng.Normal());
  }

  FedCrossOptions options;
  options.strategy = SelectionStrategy::kInOrder;
  options.alpha = 0.8;
  FedCross fedcross = MakeToyFedCross(options, k);

  for (int round : {0, 1, 5, 11}) {
    std::vector<FlatParams> fused(k);
    for (int i = 0; i < k; ++i) {
      int co = fedcross.SelectCollaborator(i, round, uploaded);
      fused[i] = FedCross::CrossAggregate(uploaded[i], uploaded[co], 0.8);
    }
    for (std::size_t d = 0; d < dim; ++d) {
      double before = 0.0, after = 0.0;
      for (int i = 0; i < k; ++i) {
        before += uploaded[i][d];
        after += fused[i][d];
      }
      EXPECT_NEAR(before, after, 1e-4) << "round " << round << " dim " << d;
    }
  }
}

// Lemma 3.4's contraction: cross-aggregation cannot increase the average
// squared distance to any fixed point w*.
TEST(CrossAggrTest, ContractionTowardsAnyPoint) {
  util::Rng rng(2);
  int k = 5;
  std::size_t dim = 10;
  std::vector<FlatParams> uploaded(k, FlatParams(dim));
  for (auto& model : uploaded) {
    for (float& value : model) value = static_cast<float>(rng.Normal());
  }
  FlatParams w_star(dim);
  for (float& value : w_star) value = static_cast<float>(rng.Normal());

  FedCrossOptions options;
  options.strategy = SelectionStrategy::kInOrder;
  FedCross fedcross = MakeToyFedCross(options, k);

  auto mean_sq_dist = [&](const std::vector<FlatParams>& models) {
    double total = 0.0;
    for (const auto& model : models) {
      for (std::size_t d = 0; d < dim; ++d) {
        total += (model[d] - w_star[d]) * (model[d] - w_star[d]);
      }
    }
    return total / models.size();
  };

  std::vector<FlatParams> fused(k);
  for (int i = 0; i < k; ++i) {
    int co = fedcross.SelectCollaborator(i, /*round=*/0, uploaded);
    fused[i] = FedCross::CrossAggregate(uploaded[i], uploaded[co], 0.7);
  }
  EXPECT_LE(mean_sq_dist(fused), mean_sq_dist(uploaded) + 1e-6);
}

// ------------------------------------------------------------ CoModelSel

TEST(CoModelSelTest, InOrderFormula) {
  FedCrossOptions options;
  options.strategy = SelectionStrategy::kInOrder;
  int k = 5;
  FedCross fedcross = MakeToyFedCross(options, k);
  std::vector<FlatParams> uploaded(k, FlatParams{0.0f});
  for (int round = 0; round < 12; ++round) {
    for (int i = 0; i < k; ++i) {
      int expected = (i + (round % (k - 1) + 1)) % k;
      EXPECT_EQ(fedcross.SelectCollaborator(i, round, uploaded), expected);
    }
  }
}

TEST(CoModelSelTest, InOrderNeverSelectsSelf) {
  FedCrossOptions options;
  options.strategy = SelectionStrategy::kInOrder;
  int k = 7;
  FedCross fedcross = MakeToyFedCross(options, k);
  std::vector<FlatParams> uploaded(k, FlatParams{0.0f});
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < k; ++i) {
      EXPECT_NE(fedcross.SelectCollaborator(i, round, uploaded), i);
    }
  }
}

TEST(CoModelSelTest, InOrderMeetsEveryPeerWithinKMinus1Rounds) {
  // The paper: "in every (K-1) rounds of training, each middleware model
  // collaborates with all the other (K-1) models once."
  FedCrossOptions options;
  options.strategy = SelectionStrategy::kInOrder;
  int k = 6;
  FedCross fedcross = MakeToyFedCross(options, k);
  std::vector<FlatParams> uploaded(k, FlatParams{0.0f});
  for (int i = 0; i < k; ++i) {
    std::set<int> partners;
    for (int round = 0; round < k - 1; ++round) {
      partners.insert(fedcross.SelectCollaborator(i, round, uploaded));
    }
    EXPECT_EQ(partners.size(), static_cast<std::size_t>(k - 1));
  }
}

TEST(CoModelSelTest, SimilarityStrategiesPickExtremes) {
  // Three models: m0 and m1 nearly parallel, m2 nearly opposite to m0.
  std::vector<FlatParams> uploaded = {
      {1.0f, 0.0f, 0.0f},
      {0.9f, 0.1f, 0.0f},
      {-1.0f, 0.05f, 0.0f},
  };
  FedCrossOptions highest;
  highest.strategy = SelectionStrategy::kHighestSimilarity;
  FedCross fedcross_high = MakeToyFedCross(highest, 3);
  EXPECT_EQ(fedcross_high.SelectCollaborator(0, 0, uploaded), 1);

  FedCrossOptions lowest;
  lowest.strategy = SelectionStrategy::kLowestSimilarity;
  FedCross fedcross_low = MakeToyFedCross(lowest, 3);
  EXPECT_EQ(fedcross_low.SelectCollaborator(0, 0, uploaded), 2);
}

TEST(CoModelSelTest, SimilarityNeverSelectsSelf) {
  util::Rng rng(3);
  std::vector<FlatParams> uploaded(4, FlatParams(8));
  for (auto& model : uploaded) {
    for (float& value : model) value = static_cast<float>(rng.Normal());
  }
  for (auto strategy : {SelectionStrategy::kHighestSimilarity,
                        SelectionStrategy::kLowestSimilarity}) {
    FedCrossOptions options;
    options.strategy = strategy;
    FedCross fedcross = MakeToyFedCross(options, 4);
    for (int i = 0; i < 4; ++i) {
      int co = fedcross.SelectCollaborator(i, 0, uploaded);
      EXPECT_NE(co, i);
      EXPECT_GE(co, 0);
      EXPECT_LT(co, 4);
    }
  }
}


TEST(SimilarityMeasureTest, NameRoundTrip) {
  for (SimilarityMeasure measure :
       {SimilarityMeasure::kCosine, SimilarityMeasure::kNegativeEuclidean}) {
    auto parsed = ParseSimilarityMeasure(SimilarityMeasureName(measure));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), measure);
  }
  EXPECT_FALSE(ParseSimilarityMeasure("manhattan").ok());
}

TEST(SimilarityMeasureTest, MeasuresCanDisagree) {
  // Cosine ignores magnitude; Euclidean does not. y1 is aligned with x but
  // far away; y2 is misaligned but close.
  fl::FlatParams x = {1.0f, 0.0f};
  fl::FlatParams aligned_far = {10.0f, 0.0f};
  fl::FlatParams close_misaligned = {0.9f, 0.5f};
  EXPECT_GT(ModelSimilarity(x, aligned_far, SimilarityMeasure::kCosine),
            ModelSimilarity(x, close_misaligned, SimilarityMeasure::kCosine));
  EXPECT_LT(
      ModelSimilarity(x, aligned_far, SimilarityMeasure::kNegativeEuclidean),
      ModelSimilarity(x, close_misaligned,
                      SimilarityMeasure::kNegativeEuclidean));
}

TEST(SimilarityMeasureTest, EuclideanSelectionWorksInFedCross) {
  FedCrossOptions options;
  options.alpha = 0.9;
  options.similarity = SimilarityMeasure::kNegativeEuclidean;
  options.strategy = SelectionStrategy::kLowestSimilarity;
  FedCross fedcross = MakeToyFedCross(options, 4);
  const fl::MetricsHistory& history = fedcross.Run(8);
  EXPECT_GT(history.BestAccuracy(), 0.8f);
}

// ---------------------------------------------------------- Dynamic alpha

TEST(DynamicAlphaTest, ConstantWhenDisabled) {
  FedCrossOptions options;
  options.alpha = 0.99;
  FedCross fedcross = MakeToyFedCross(options);
  EXPECT_DOUBLE_EQ(fedcross.AlphaAt(0), 0.99);
  EXPECT_DOUBLE_EQ(fedcross.AlphaAt(1000), 0.99);
}

TEST(DynamicAlphaTest, RampsFromStartToTarget) {
  FedCrossOptions options;
  options.alpha = 0.99;
  options.dynamic_alpha_rounds = 100;
  options.dynamic_alpha_start = 0.5;
  FedCross fedcross = MakeToyFedCross(options);
  EXPECT_NEAR(fedcross.AlphaAt(0), 0.5 + 0.49 / 100, 1e-9);
  EXPECT_NEAR(fedcross.AlphaAt(49), 0.5 + 0.49 * 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(fedcross.AlphaAt(100), 0.99);
  EXPECT_DOUBLE_EQ(fedcross.AlphaAt(500), 0.99);
  // Monotone non-decreasing.
  for (int r = 1; r < 120; ++r) {
    EXPECT_GE(fedcross.AlphaAt(r), fedcross.AlphaAt(r - 1) - 1e-12);
  }
}

TEST(DynamicAlphaTest, DelayedWindowForPmDa) {
  // PM-DA: propellers for rounds [0,50), dynamic alpha for [50,100).
  FedCrossOptions options;
  options.alpha = 0.99;
  options.dynamic_alpha_begin = 50;
  options.dynamic_alpha_rounds = 50;
  FedCross fedcross = MakeToyFedCross(options);
  EXPECT_DOUBLE_EQ(fedcross.AlphaAt(10), 0.99);  // before window: target
  EXPECT_LT(fedcross.AlphaAt(50), 0.6);          // ramp restarts at 0.5
  EXPECT_DOUBLE_EQ(fedcross.AlphaAt(100), 0.99);
}

// ----------------------------------------------------------- Integration

TEST(FedCrossTest, MiddlewareListHasKModels) {
  FedCross fedcross = MakeToyFedCross(FedCrossOptions(), 5);
  EXPECT_EQ(fedcross.middleware().size(), 5u);
}

TEST(FedCrossTest, GlobalIsAverageOfMiddleware) {
  FedCross fedcross = MakeToyFedCross(FedCrossOptions(), 3);
  fedcross.RunRound(0);
  const auto& middleware = fedcross.middleware();
  FlatParams global = fedcross.GlobalParams();
  for (std::size_t d = 0; d < global.size(); ++d) {
    double mean = 0.0;
    for (const auto& model : middleware) mean += model[d];
    mean /= middleware.size();
    EXPECT_NEAR(global[d], mean, 1e-5);
  }
}

TEST(FedCrossTest, MiddlewareModelsDivergeThenStayDistinct) {
  FedCrossOptions options;
  options.alpha = 0.9;
  FedCross fedcross = MakeToyFedCross(options, 4);
  fedcross.RunRound(0);
  const auto& middleware = fedcross.middleware();
  // After one round on different clients the middleware models differ.
  EXPECT_NE(middleware[0], middleware[1]);
}

TEST(FedCrossTest, LearnsToyProblemNonIid) {
  FedCrossOptions options;
  options.alpha = 0.9;
  options.strategy = SelectionStrategy::kLowestSimilarity;
  FedCross fedcross = MakeToyFedCross(options, 4);
  const fl::MetricsHistory& history = fedcross.Run(10);
  EXPECT_GT(history.BestAccuracy(), 0.9f);
}

TEST(FedCrossTest, CommunicationMatchesFedAvg) {
  // The headline claim: no extra communication versus FedAvg (2K models).
  FedCross fedcross = MakeToyFedCross(FedCrossOptions(), 4);
  fedcross.Run(1);
  double model_bytes = fl::CommTracker::FloatBytes(fedcross.model_size());
  const fl::RoundRecord& record = fedcross.history().records().back();
  EXPECT_EQ(record.bytes_down, 4 * model_bytes);
  EXPECT_EQ(record.bytes_up, 4 * model_bytes);
}

TEST(FedCrossTest, PropellerRoundsRun) {
  FedCrossOptions options;
  options.alpha = 0.9;
  options.propeller_count = 2;
  options.propeller_rounds = 3;
  FedCross fedcross = MakeToyFedCross(options, 4);
  const fl::MetricsHistory& history = fedcross.Run(6);
  EXPECT_GT(history.BestAccuracy(), 0.8f);
}

TEST(FedCrossTest, PropellerIndicesAreDistinctAndExcludeSelf) {
  // Regression: the old fix-up (`if (j == i) j = (j + 1) % k;` per pick)
  // double-counted a propeller whenever the skip landed on an index already
  // taken. Concretely, k=4, count=3, round=2 for model 0 selected
  // {3, 1, 1} — model 2 never contributed. The walk-based selection must
  // return every other model exactly once.
  std::vector<int> indices =
      FedCross::SelectPropellerIndices(/*model_index=*/0, /*round=*/2,
                                       /*k=*/4, /*count=*/3);
  EXPECT_EQ(indices, (std::vector<int>{3, 1, 2}));

  for (int k : {3, 4, 5, 8}) {
    for (int round = 0; round < 2 * k; ++round) {
      for (int count = 1; count <= k; ++count) {
        for (int i = 0; i < k; ++i) {
          std::vector<int> picks =
              FedCross::SelectPropellerIndices(i, round, k, count);
          EXPECT_EQ(static_cast<int>(picks.size()), std::min(count, k - 1));
          std::set<int> unique(picks.begin(), picks.end());
          EXPECT_EQ(unique.size(), picks.size())
              << "duplicate propeller: k=" << k << " round=" << round
              << " count=" << count << " i=" << i;
          EXPECT_EQ(unique.count(i), 0u) << "model aggregated with itself";
          for (int p : picks) {
            EXPECT_GE(p, 0);
            EXPECT_LT(p, k);
          }
        }
      }
    }
  }
}

TEST(FedCrossTest, PropellerFirstPickIsInOrderCollaborator) {
  // The walk starts at the in-order collaborator, preserving the paper's
  // single-propeller behaviour when propeller_count == 1.
  for (int k : {3, 4, 6}) {
    for (int round = 0; round < k; ++round) {
      for (int i = 0; i < k; ++i) {
        std::vector<int> picks =
            FedCross::SelectPropellerIndices(i, round, k, /*count=*/1);
        ASSERT_EQ(picks.size(), 1u);
        EXPECT_EQ(picks[0], (i + (round % (k - 1) + 1)) % k);
      }
    }
  }
}

TEST(FedCrossTest, AllStrategiesLearn) {
  for (auto strategy :
       {SelectionStrategy::kInOrder, SelectionStrategy::kHighestSimilarity,
        SelectionStrategy::kLowestSimilarity}) {
    FedCrossOptions options;
    options.alpha = 0.9;
    options.strategy = strategy;
    FedCross fedcross = MakeToyFedCross(options, 4);
    const fl::MetricsHistory& history = fedcross.Run(8);
    EXPECT_GT(history.BestAccuracy(), 0.8f)
        << SelectionStrategyName(strategy);
  }
}

class FedCrossAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(FedCrossAlphaSweep, LearnsAtEveryPaperAlpha) {
  FedCrossOptions options;
  options.alpha = GetParam();
  FedCross fedcross = MakeToyFedCross(options, 4);
  const fl::MetricsHistory& history = fedcross.Run(8);
  EXPECT_GT(history.BestAccuracy(), 0.75f) << "alpha " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PaperAlphas, FedCrossAlphaSweep,
                         ::testing::Values(0.5, 0.8, 0.9, 0.95, 0.99));


TEST(FedCrossTest, MiddlewareModelsGrowMoreSimilar) {
  // Paper Section III-D: "each middleware model gradually becomes
  // well-trained with fully exchanged knowledge, leading to a notable
  // increase in the similarity among middleware models."
  FedCrossOptions options;
  options.alpha = 0.9;
  FedCross fedcross = MakeToyFedCross(options, 4);

  auto mean_pairwise_similarity = [&]() {
    const auto& middleware = fedcross.middleware();
    double total = 0.0;
    int pairs = 0;
    for (std::size_t i = 0; i < middleware.size(); ++i) {
      for (std::size_t j = i + 1; j < middleware.size(); ++j) {
        total += ModelSimilarity(middleware[i], middleware[j],
                                 SimilarityMeasure::kCosine);
        ++pairs;
      }
    }
    return total / pairs;
  };

  for (int round = 0; round < 3; ++round) fedcross.RunRound(round);
  double early = mean_pairwise_similarity();
  for (int round = 3; round < 20; ++round) fedcross.RunRound(round);
  double late = mean_pairwise_similarity();
  EXPECT_GT(late, early);
  EXPECT_GT(late, 0.9);  // near-unified by the end of training
}

TEST(FedCrossTest, DeterministicAcrossRuns) {
  FedCrossOptions options;
  FedCross a = MakeToyFedCross(options, 4);
  FedCross b = MakeToyFedCross(options, 4);
  a.RunRound(0);
  b.RunRound(0);
  EXPECT_EQ(a.middleware()[0], b.middleware()[0]);
}

}  // namespace
}  // namespace fedcross::core
