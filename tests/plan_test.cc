// Execution-plan runtime (nn/plan.h + fl/plan_runner.h): the grouped GEMM
// primitive must be bit-identical to standalone calls on every dispatch
// tier, and --exec=plan must train byte-for-byte like --exec=layers for
// every algorithm, model topology (falling back where unsupported), and
// --fl_threads value, while keeping the steady-state round free of tensor
// heap allocations.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/fedcross.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "fl/clusamp.h"
#include "fl/fedavg.h"
#include "fl/fedgen.h"
#include "fl/model_pool.h"
#include "fl/scaffold.h"
#include "models/model_zoo.h"
#include "models/plan_support.h"
#include "nn/activations.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/plan.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"
#include "util/rng.h"

namespace fedcross::fl {
namespace {

// ---------------------------------------------------------------------------
// GemmGrouped == Gemm, bitwise, on every available tier
// ---------------------------------------------------------------------------

struct GemmCase {
  bool trans_a, trans_b;
  int m, n, k;
};

void FillNormal(std::vector<float>& v, util::Rng& rng) {
  for (float& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
}

void CheckGroupedMatchesStandalone(ops::SimdTier tier) {
  if (!ops::testing::ForceSimdTier(tier)) {
    GTEST_SKIP() << "tier " << ops::SimdTierName(tier)
                 << " unavailable on this CPU/build";
  }
  // Small shapes take the replica-interleaved grouped kernel; the large one
  // exceeds kSmallGemmOps and exercises the loop-over-blocked path.
  const GemmCase cases[] = {
      {false, false, 4, 6, 5},   {true, false, 4, 6, 5},
      {false, true, 4, 6, 5},    {true, true, 4, 6, 5},
      {false, false, 7, 33, 9},  {false, true, 20, 5, 17},
      {false, false, 24, 96, 64},  // blocked-kernel territory
      {true, false, 48, 48, 40},
  };
  const int kCount = 5;
  util::Rng rng(123);
  for (const GemmCase& c : cases) {
    int lda = c.trans_a ? c.m : c.k;
    int ldb = c.trans_b ? c.k : c.n;
    int ldc = c.n;
    std::vector<std::vector<float>> a(kCount), b(kCount), grouped(kCount),
        solo(kCount);
    std::vector<ops::GemmGroup> groups(kCount);
    for (int r = 0; r < kCount; ++r) {
      a[r].resize(static_cast<std::size_t>(c.m) * c.k);
      b[r].resize(static_cast<std::size_t>(c.k) * c.n);
      grouped[r].resize(static_cast<std::size_t>(c.m) * c.n);
      FillNormal(a[r], rng);
      FillNormal(b[r], rng);
      FillNormal(grouped[r], rng);  // beta != 0 exercises the C scaling
      solo[r] = grouped[r];
      groups[r] = {a[r].data(), b[r].data(), grouped[r].data()};
    }
    ops::GemmGrouped(c.trans_a, c.trans_b, c.m, c.n, c.k, 0.75f, lda, ldb,
                     0.5f, ldc, groups.data(), kCount);
    for (int r = 0; r < kCount; ++r) {
      ops::Gemm(c.trans_a, c.trans_b, c.m, c.n, c.k, 0.75f, a[r].data(), lda,
                b[r].data(), ldb, 0.5f, solo[r].data(), ldc);
      EXPECT_EQ(std::memcmp(grouped[r].data(), solo[r].data(),
                            grouped[r].size() * sizeof(float)),
                0)
          << ops::SimdTierName(tier) << " ta=" << c.trans_a
          << " tb=" << c.trans_b << " m=" << c.m << " n=" << c.n
          << " k=" << c.k << " replica " << r;
    }
  }
  ops::testing::ResetForcedSimdTier();
}

struct SimdTierGuard {
  ~SimdTierGuard() { ops::testing::ResetForcedSimdTier(); }
};

TEST(PlanGemmTest, GroupedBitIdenticalGenericTier) {
  SimdTierGuard guard;
  CheckGroupedMatchesStandalone(ops::SimdTier::kGeneric);
}

TEST(PlanGemmTest, GroupedBitIdenticalAvx2Tier) {
  SimdTierGuard guard;
  CheckGroupedMatchesStandalone(ops::SimdTier::kAvx2);
}

TEST(PlanGemmTest, GroupedBitIdenticalAvx512Tier) {
  SimdTierGuard guard;
  CheckGroupedMatchesStandalone(ops::SimdTier::kAvx512);
}

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

// MLP with every plan-supported elementwise kind: linear, relu, dropout,
// tanh, sigmoid.
models::ModelFactory MlpFactory(int dim, int classes) {
  return [dim, classes]() {
    util::Rng rng(11);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(dim, 16, rng));
    model.Add(std::make_unique<nn::Relu>());
    model.Add(std::make_unique<nn::Dropout>(0.25f, 99));
    model.Add(std::make_unique<nn::Linear>(16, 12, rng));
    model.Add(std::make_unique<nn::Tanh>());
    model.Add(std::make_unique<nn::Linear>(12, classes, rng));
    return model;
  };
}

data::FederatedDataset MakeToyFederated(int num_clients, int per_client,
                                        int dim, std::uint64_t seed) {
  util::Rng rng(seed);
  data::FederatedDataset federated;
  federated.num_classes = 2;
  auto gen_example = [&](int k, std::vector<float>& features) {
    float mean = k == 0 ? -1.0f : 1.0f;
    for (int d = 0; d < dim; ++d) {
      features.push_back(mean + static_cast<float>(rng.Normal(0.0, 0.6)));
    }
  };
  for (int c = 0; c < num_clients; ++c) {
    std::vector<float> features;
    std::vector<int> labels;
    for (int i = 0; i < per_client; ++i) {
      int k = rng.Uniform() < 0.9 ? c % 2 : 1 - c % 2;
      gen_example(k, features);
      labels.push_back(k);
    }
    federated.client_train.push_back(std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{dim}, std::move(features), std::move(labels), 2));
  }
  std::vector<float> features;
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    gen_example(i % 2, features);
    labels.push_back(i % 2);
  }
  federated.test = std::make_shared<data::InMemoryDataset>(
      Tensor::Shape{dim}, std::move(features), std::move(labels), 2);
  return federated;
}

data::FederatedDataset MakeImageFederated(int num_clients,
                                          std::uint64_t seed) {
  data::SyntheticImageOptions image_options;
  image_options.num_classes = 4;
  image_options.height = image_options.width = 8;
  image_options.train_per_class = 20;
  image_options.test_per_class = 8;
  image_options.seed = seed;
  data::ImageCorpus corpus = data::MakeSyntheticImageCorpus(image_options);
  util::Rng rng(seed + 1);
  data::FederatedDataset federated;
  federated.num_classes = 4;
  federated.client_train = data::MakeClientShards(
      corpus.train, data::IidPartition(*corpus.train, num_clients, rng));
  federated.test = corpus.test;
  return federated;
}

AlgorithmConfig ToyConfig(ExecMode exec) {
  AlgorithmConfig config;
  config.clients_per_round = 4;
  config.train.local_epochs = 2;
  // per_client=35 below is not a multiple of 10, so every epoch ends in a
  // short batch and the lockstep runner must group two batch geometries.
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.train.exec = exec;
  config.seed = 17;
  // Nonzero dropout exercises the Prepare/Finish echo path in plan mode.
  config.dropout_prob = 0.2;
  return config;
}

struct FlThreadsGuard {
  ~FlThreadsGuard() { SetFlThreads(1); }
};

void ExpectBitIdentical(const FlatParams& a, const FlatParams& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (a.empty()) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what;
}

std::unique_ptr<FlAlgorithm> MakeAlgorithm(const std::string& name,
                                           ExecMode exec) {
  AlgorithmConfig config = ToyConfig(exec);
  data::FederatedDataset data = MakeToyFederated(8, 35, 6, 41);
  models::ModelFactory factory = MlpFactory(6, 2);
  if (name == "fedavg") {
    return std::make_unique<FedAvg>(config, std::move(data), factory);
  }
  if (name == "fedprox") {
    return std::make_unique<FedProx>(config, std::move(data), factory, 0.1f);
  }
  if (name == "scaffold") {
    return std::make_unique<Scaffold>(config, std::move(data), factory);
  }
  if (name == "clusamp") {
    return std::make_unique<CluSamp>(config, std::move(data), factory);
  }
  if (name == "fedgen") {
    return std::make_unique<FedGen>(config, std::move(data), factory);
  }
  core::FedCrossOptions options;
  options.alpha = 0.9;
  return std::make_unique<core::FedCross>(config, std::move(data), factory,
                                          options);
}

FlatParams RunToy(const std::string& algo, ExecMode exec, int threads,
                  int rounds) {
  SetFlThreads(threads);
  std::unique_ptr<FlAlgorithm> server = MakeAlgorithm(algo, exec);
  for (int r = 0; r < rounds; ++r) server->RunRound(r);
  return server->GlobalParams();
}

// ---------------------------------------------------------------------------
// plan == layers, for all six algorithms, at fl_threads 1 and 4
// ---------------------------------------------------------------------------

TEST(PlanExecutionTest, AllAlgorithmsBitIdenticalAcrossExecAndThreads) {
  FlThreadsGuard guard;
  const char* algorithms[] = {"fedavg",  "fedprox", "scaffold",
                              "clusamp", "fedgen",  "fedcross"};
  for (const char* algo : algorithms) {
    FlatParams layers1 = RunToy(algo, ExecMode::kLayers, 1, 3);
    FlatParams plan1 = RunToy(algo, ExecMode::kPlan, 1, 3);
    FlatParams plan4 = RunToy(algo, ExecMode::kPlan, 4, 3);
    ExpectBitIdentical(layers1, plan1, std::string(algo) + ": plan@1");
    ExpectBitIdentical(layers1, plan4, std::string(algo) + ": plan@4");
  }
}

// ---------------------------------------------------------------------------
// plan == layers across the model zoo (conv topologies natively, ResNet via
// the per-job layer fallback)
// ---------------------------------------------------------------------------

FlatParams RunImageFedAvg(const models::ModelFactory& factory, ExecMode exec,
                          int rounds) {
  AlgorithmConfig config;
  config.clients_per_round = 3;
  config.train.local_epochs = 1;
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.train.exec = exec;
  config.seed = 23;
  FedAvg server(config, MakeImageFederated(4, 9), factory);
  for (int r = 0; r < rounds; ++r) server.RunRound(r);
  return server.GlobalParams();
}

TEST(PlanExecutionTest, ModelZooBitIdentical) {
  FlThreadsGuard guard;
  SetFlThreads(1);

  models::CnnConfig cnn;
  cnn.height = cnn.width = 8;
  cnn.num_classes = 4;
  cnn.conv1_channels = 4;
  cnn.conv2_channels = 8;
  cnn.fc_dim = 16;

  models::VggConfig vgg;
  vgg.height = vgg.width = 8;
  vgg.num_classes = 4;
  vgg.base_width = 4;
  vgg.fc_dim = 16;

  models::ResNetConfig resnet;  // residual blocks: exercises the fallback
  resnet.height = resnet.width = 8;
  resnet.num_classes = 4;
  resnet.base_width = 4;

  struct ZooCase {
    const char* name;
    models::ModelFactory factory;
  };
  ZooCase zoo[] = {{"cnn", models::MakeCnn(cnn)},
                   {"vgg", models::MakeVgg(vgg)},
                   {"resnet", models::MakeResNet(resnet)}};
  for (ZooCase& z : zoo) {
    FlatParams layers = RunImageFedAvg(z.factory, ExecMode::kLayers, 2);
    FlatParams plan = RunImageFedAvg(z.factory, ExecMode::kPlan, 2);
    ExpectBitIdentical(layers, plan, z.name);
  }
}

// ---------------------------------------------------------------------------
// Support matrix + program properties
// ---------------------------------------------------------------------------

TEST(PlanCompileTest, SupportMatrixMatchesTopologies) {
  models::CnnConfig cnn;
  cnn.height = cnn.width = 8;
  cnn.num_classes = 4;
  models::VggConfig vgg;
  vgg.height = vgg.width = 8;
  vgg.num_classes = 4;
  models::ResNetConfig resnet;
  resnet.height = resnet.width = 8;
  resnet.num_classes = 4;
  models::LstmConfig lstm;

  EXPECT_TRUE(models::SupportsExecutionPlan(MlpFactory(6, 2), {4, 6}));
  EXPECT_TRUE(
      models::SupportsExecutionPlan(models::MakeCnn(cnn), {2, 3, 8, 8}));
  EXPECT_TRUE(
      models::SupportsExecutionPlan(models::MakeVgg(vgg), {2, 3, 8, 8}));
  EXPECT_FALSE(models::SupportsExecutionPlan(models::MakeResNet(resnet),
                                             {2, 3, 8, 8}));
  EXPECT_FALSE(models::SupportsExecutionPlan(models::MakeLstm(lstm),
                                             {2, 16}));
}

TEST(PlanCompileTest, FirstOpSkipsInputGradientAndProgramsAreCached) {
  models::ModelFactory factory = MlpFactory(6, 2);
  nn::Sequential model = factory();
  std::optional<nn::plan::Program> program =
      nn::plan::Program::Compile(model, {10, 6});
  ASSERT_TRUE(program.has_value());
  ASSERT_FALSE(program->ops.empty());
  // Nothing consumes the gradient of the pipeline input: the first linear
  // must skip its dX GEMM — that skip is part of plan mode's speedup.
  EXPECT_TRUE(program->ops.front().skip_dx);
  EXPECT_FALSE(program->ops.back().skip_dx);
  EXPECT_EQ(program->classes, 2);
  EXPECT_GT(program->arena_floats, 0);

  ModelPool pool(factory);
  ModelPool::Lease lease = pool.Acquire();
  const nn::plan::Program* p1 = pool.ProgramFor({10, 6}, lease->model);
  const nn::plan::Program* p2 = pool.ProgramFor({10, 6}, lease->model);
  const nn::plan::Program* p3 = pool.ProgramFor({5, 6}, lease->model);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1, p2);      // cached: same shape, same program object
  ASSERT_NE(p3, nullptr);
  EXPECT_NE(p1, p3);      // the epoch-tail short batch compiles its own
  EXPECT_EQ(p3->batch, 5);

  models::ResNetConfig resnet;
  resnet.height = resnet.width = 8;
  resnet.num_classes = 4;
  ModelPool resnet_pool(models::MakeResNet(resnet));
  ModelPool::Lease resnet_lease = resnet_pool.Acquire();
  EXPECT_EQ(resnet_pool.ProgramFor({2, 3, 8, 8}, resnet_lease->model),
            nullptr);
}

// ---------------------------------------------------------------------------
// Steady-state allocation freedom
// ---------------------------------------------------------------------------

TEST(PlanExecutionTest, SteadyStatePlanTrainingAllocatesNoTensors) {
  const int dim = 6;
  auto dataset = fedcross::testing::MakeToyDataset(35, dim, 0.4f, 3);
  FlClient client(0, dataset);
  models::ModelFactory factory = MlpFactory(dim, 2);
  ModelPool pool(factory);
  FlatParams init = factory().ParamsToFlat();

  ClientTrainSpec spec;
  spec.options.local_epochs = 2;
  spec.options.batch_size = 10;  // 70 examples: short tail batch every epoch
  spec.options.lr = 0.05f;
  spec.options.exec = ExecMode::kPlan;

  LocalTrainResult result;
  for (int round = 0; round < 2; ++round) {
    util::Rng rng(100 + round);
    client.Train(pool, init, spec, rng, result);
  }

  Tensor::ResetHeapAllocations();
  for (int round = 2; round < 5; ++round) {
    util::Rng rng(100 + round);
    client.Train(pool, init, spec, rng, result);
  }
  EXPECT_EQ(Tensor::HeapAllocations(), 0u);
  EXPECT_EQ(pool.replicas_created(), 1u);
}

// ---------------------------------------------------------------------------
// Checkpoints cross exec modes (ExecMode is not fingerprinted)
// ---------------------------------------------------------------------------

TEST(PlanExecutionTest, CheckpointResumesAcrossExecModes) {
  FlThreadsGuard guard;
  SetFlThreads(1);
  const char* path = "plan_exec_mode.ckpt";

  models::ModelFactory factory = MlpFactory(6, 2);
  FedAvg full(ToyConfig(ExecMode::kLayers), MakeToyFederated(8, 35, 6, 41),
              factory);
  full.Run(4, 1);

  FedAvg first(ToyConfig(ExecMode::kLayers), MakeToyFederated(8, 35, 6, 41),
               factory);
  first.Run(2, 1);
  ASSERT_TRUE(first.SaveCheckpoint(path).ok());

  FedAvg resumed(ToyConfig(ExecMode::kPlan), MakeToyFederated(8, 35, 6, 41),
                 factory);
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());
  resumed.Run(4, 1);

  ExpectBitIdentical(full.GlobalParams(), resumed.GlobalParams(),
                     "layers run vs layers->plan resume");
  std::remove(path);
}

}  // namespace
}  // namespace fedcross::fl
