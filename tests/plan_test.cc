// Execution-plan runtime (nn/plan.h + fl/plan_runner.h): the grouped
// GEMM/conv primitives must be bit-identical to standalone calls on every
// dispatch tier, and --exec=plan must train byte-for-byte like
// --exec=layers for every algorithm, the whole model zoo (MLP/CNN/VGG,
// ResNet residual stacks, the Embedding+LSTM head — no fallbacks), every
// --fl_threads value, and both round modes, while keeping the steady-state
// round free of tensor heap allocations and scratch growth. bf16 arena
// storage must stay thread-invariant, within bf16 rounding of fp32, and
// cut the pooled arena bytes roughly in half.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/fedcross.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "data/synthetic_text.h"
#include "fl/clusamp.h"
#include "fl/fedavg.h"
#include "fl/fedgen.h"
#include "fl/model_pool.h"
#include "fl/scaffold.h"
#include "models/model_zoo.h"
#include "models/plan_support.h"
#include "nn/activations.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/plan.h"
#include "obs/metrics.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"
#include "util/rng.h"

namespace fedcross::fl {
namespace {

// ---------------------------------------------------------------------------
// GemmGrouped == Gemm, bitwise, on every available tier
// ---------------------------------------------------------------------------

struct GemmCase {
  bool trans_a, trans_b;
  int m, n, k;
};

void FillNormal(std::vector<float>& v, util::Rng& rng) {
  for (float& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
}

void CheckGroupedMatchesStandalone(ops::SimdTier tier) {
  if (!ops::testing::ForceSimdTier(tier)) {
    GTEST_SKIP() << "tier " << ops::SimdTierName(tier)
                 << " unavailable on this CPU/build";
  }
  // Small shapes take the replica-interleaved grouped kernel; the large one
  // exceeds kSmallGemmOps and exercises the loop-over-blocked path.
  const GemmCase cases[] = {
      {false, false, 4, 6, 5},   {true, false, 4, 6, 5},
      {false, true, 4, 6, 5},    {true, true, 4, 6, 5},
      {false, false, 7, 33, 9},  {false, true, 20, 5, 17},
      {false, false, 24, 96, 64},  // blocked-kernel territory
      {true, false, 48, 48, 40},
  };
  const int kCount = 5;
  util::Rng rng(123);
  for (const GemmCase& c : cases) {
    int lda = c.trans_a ? c.m : c.k;
    int ldb = c.trans_b ? c.k : c.n;
    int ldc = c.n;
    std::vector<std::vector<float>> a(kCount), b(kCount), grouped(kCount),
        solo(kCount);
    std::vector<ops::GemmGroup> groups(kCount);
    for (int r = 0; r < kCount; ++r) {
      a[r].resize(static_cast<std::size_t>(c.m) * c.k);
      b[r].resize(static_cast<std::size_t>(c.k) * c.n);
      grouped[r].resize(static_cast<std::size_t>(c.m) * c.n);
      FillNormal(a[r], rng);
      FillNormal(b[r], rng);
      FillNormal(grouped[r], rng);  // beta != 0 exercises the C scaling
      solo[r] = grouped[r];
      groups[r] = {a[r].data(), b[r].data(), grouped[r].data()};
    }
    ops::GemmGrouped(c.trans_a, c.trans_b, c.m, c.n, c.k, 0.75f, lda, ldb,
                     0.5f, ldc, groups.data(), kCount);
    for (int r = 0; r < kCount; ++r) {
      ops::Gemm(c.trans_a, c.trans_b, c.m, c.n, c.k, 0.75f, a[r].data(), lda,
                b[r].data(), ldb, 0.5f, solo[r].data(), ldc);
      EXPECT_EQ(std::memcmp(grouped[r].data(), solo[r].data(),
                            grouped[r].size() * sizeof(float)),
                0)
          << ops::SimdTierName(tier) << " ta=" << c.trans_a
          << " tb=" << c.trans_b << " m=" << c.m << " n=" << c.n
          << " k=" << c.k << " replica " << r;
    }
  }
  ops::testing::ResetForcedSimdTier();
}

struct SimdTierGuard {
  ~SimdTierGuard() { ops::testing::ResetForcedSimdTier(); }
};

TEST(PlanGemmTest, GroupedBitIdenticalGenericTier) {
  SimdTierGuard guard;
  CheckGroupedMatchesStandalone(ops::SimdTier::kGeneric);
}

TEST(PlanGemmTest, GroupedBitIdenticalAvx2Tier) {
  SimdTierGuard guard;
  CheckGroupedMatchesStandalone(ops::SimdTier::kAvx2);
}

TEST(PlanGemmTest, GroupedBitIdenticalAvx512Tier) {
  SimdTierGuard guard;
  CheckGroupedMatchesStandalone(ops::SimdTier::kAvx512);
}

// ---------------------------------------------------------------------------
// ConvGrouped == per-image Gemm, bitwise, on every available tier
// ---------------------------------------------------------------------------

void CheckConvGroupedMatchesStandalone(ops::SimdTier tier) {
  if (!ops::testing::ForceSimdTier(tier)) {
    GTEST_SKIP() << "tier " << ops::SimdTierName(tier)
                 << " unavailable on this CPU/build";
  }
  struct ConvCase {
    int batch, out_channels, out_area, patch;
  };
  // Narrow-area cases (out_area <= 8 with small per-image ops) take the
  // replica-interleaved grouped kernel (with the weight interleave hoisted
  // across the image loop); wide-area cases fall back to the per-image
  // standalone loop even when ops are small, and the last case exceeds
  // kSmallGemmOps per image on top of that (blocked-kernel territory).
  // Every path must match the standalone chain bitwise.
  const ConvCase cases[] = {
      {2, 4, 4, 12},    // interleaved: tiny late-stage conv
      {3, 8, 8, 27},    // interleaved: area at the crossover boundary
      {1, 5, 7, 10},    // interleaved: odd area exercises lane tails
      {5, 16, 4, 144},  // interleaved: deep-channel 2x2 stage
      {5, 3, 36, 8},    // per-image loop: area too wide to interleave
      {2, 16, 64, 72},  // per-image loop: 16*64*72 ops/image on top
  };
  const int kCount = 5;
  util::Rng rng(321);
  for (const ConvCase& c : cases) {
    std::vector<std::vector<float>> weights(kCount), columns(kCount),
        grouped(kCount), solo(kCount);
    std::vector<ops::ConvGroup> groups(kCount);
    for (int r = 0; r < kCount; ++r) {
      weights[r].resize(static_cast<std::size_t>(c.out_channels) * c.patch);
      columns[r].resize(static_cast<std::size_t>(c.batch) * c.patch *
                        c.out_area);
      grouped[r].resize(static_cast<std::size_t>(c.batch) * c.out_channels *
                        c.out_area);
      FillNormal(weights[r], rng);
      FillNormal(columns[r], rng);
      FillNormal(grouped[r], rng);  // garbage: beta == 0 must overwrite it
      solo[r] = grouped[r];
      groups[r] = {weights[r].data(), columns[r].data(), grouped[r].data()};
    }
    ops::ConvGrouped(c.batch, c.out_channels, c.out_area, c.patch,
                     groups.data(), kCount);
    const std::int64_t col_size =
        static_cast<std::int64_t>(c.patch) * c.out_area;
    const std::int64_t out_size =
        static_cast<std::int64_t>(c.out_channels) * c.out_area;
    for (int r = 0; r < kCount; ++r) {
      for (int b = 0; b < c.batch; ++b) {
        ops::Gemm(false, false, c.out_channels, c.out_area, c.patch, 1.0f,
                  weights[r].data(), c.patch, columns[r].data() + b * col_size,
                  c.out_area, 0.0f, solo[r].data() + b * out_size, c.out_area);
      }
      EXPECT_EQ(std::memcmp(grouped[r].data(), solo[r].data(),
                            grouped[r].size() * sizeof(float)),
                0)
          << ops::SimdTierName(tier) << " batch=" << c.batch
          << " oc=" << c.out_channels << " area=" << c.out_area
          << " patch=" << c.patch << " replica " << r;
    }
  }
  ops::testing::ResetForcedSimdTier();
}

TEST(PlanConvTest, GroupedBitIdenticalGenericTier) {
  SimdTierGuard guard;
  CheckConvGroupedMatchesStandalone(ops::SimdTier::kGeneric);
}

TEST(PlanConvTest, GroupedBitIdenticalAvx2Tier) {
  SimdTierGuard guard;
  CheckConvGroupedMatchesStandalone(ops::SimdTier::kAvx2);
}

TEST(PlanConvTest, GroupedBitIdenticalAvx512Tier) {
  SimdTierGuard guard;
  CheckConvGroupedMatchesStandalone(ops::SimdTier::kAvx512);
}

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

// MLP with every plan-supported elementwise kind: linear, relu, dropout,
// tanh, sigmoid.
models::ModelFactory MlpFactory(int dim, int classes) {
  return [dim, classes]() {
    util::Rng rng(11);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(dim, 16, rng));
    model.Add(std::make_unique<nn::Relu>());
    model.Add(std::make_unique<nn::Dropout>(0.25f, 99));
    model.Add(std::make_unique<nn::Linear>(16, 12, rng));
    model.Add(std::make_unique<nn::Tanh>());
    model.Add(std::make_unique<nn::Linear>(12, classes, rng));
    return model;
  };
}

data::FederatedDataset MakeToyFederated(int num_clients, int per_client,
                                        int dim, std::uint64_t seed) {
  util::Rng rng(seed);
  data::FederatedDataset federated;
  federated.num_classes = 2;
  auto gen_example = [&](int k, std::vector<float>& features) {
    float mean = k == 0 ? -1.0f : 1.0f;
    for (int d = 0; d < dim; ++d) {
      features.push_back(mean + static_cast<float>(rng.Normal(0.0, 0.6)));
    }
  };
  for (int c = 0; c < num_clients; ++c) {
    std::vector<float> features;
    std::vector<int> labels;
    for (int i = 0; i < per_client; ++i) {
      int k = rng.Uniform() < 0.9 ? c % 2 : 1 - c % 2;
      gen_example(k, features);
      labels.push_back(k);
    }
    federated.client_train.push_back(std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{dim}, std::move(features), std::move(labels), 2));
  }
  std::vector<float> features;
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    gen_example(i % 2, features);
    labels.push_back(i % 2);
  }
  federated.test = std::make_shared<data::InMemoryDataset>(
      Tensor::Shape{dim}, std::move(features), std::move(labels), 2);
  return federated;
}

data::FederatedDataset MakeImageFederated(int num_clients,
                                          std::uint64_t seed) {
  data::SyntheticImageOptions image_options;
  image_options.num_classes = 4;
  image_options.height = image_options.width = 8;
  image_options.train_per_class = 20;
  image_options.test_per_class = 8;
  image_options.seed = seed;
  data::ImageCorpus corpus = data::MakeSyntheticImageCorpus(image_options);
  util::Rng rng(seed + 1);
  data::FederatedDataset federated;
  federated.num_classes = 4;
  federated.client_train = data::MakeClientShards(
      corpus.train, data::IidPartition(*corpus.train, num_clients, rng));
  federated.test = corpus.test;
  return federated;
}

AlgorithmConfig ToyConfig(ExecMode exec) {
  AlgorithmConfig config;
  config.clients_per_round = 4;
  config.train.local_epochs = 2;
  // per_client=35 below is not a multiple of 10, so every epoch ends in a
  // short batch and the lockstep runner must group two batch geometries.
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.train.exec = exec;
  config.seed = 17;
  // Nonzero dropout exercises the Prepare/Finish echo path in plan mode.
  config.dropout_prob = 0.2;
  return config;
}

struct FlThreadsGuard {
  ~FlThreadsGuard() { SetFlThreads(1); }
};

void ExpectBitIdentical(const FlatParams& a, const FlatParams& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (a.empty()) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what;
}

std::unique_ptr<FlAlgorithm> MakeAlgorithm(const std::string& name,
                                           ExecMode exec, bool bf16 = false) {
  AlgorithmConfig config = ToyConfig(exec);
  config.train.plan_bf16 = bf16;
  data::FederatedDataset data = MakeToyFederated(8, 35, 6, 41);
  models::ModelFactory factory = MlpFactory(6, 2);
  if (name == "fedavg") {
    return std::make_unique<FedAvg>(config, std::move(data), factory);
  }
  if (name == "fedprox") {
    return std::make_unique<FedProx>(config, std::move(data), factory, 0.1f);
  }
  if (name == "scaffold") {
    return std::make_unique<Scaffold>(config, std::move(data), factory);
  }
  if (name == "clusamp") {
    return std::make_unique<CluSamp>(config, std::move(data), factory);
  }
  if (name == "fedgen") {
    return std::make_unique<FedGen>(config, std::move(data), factory);
  }
  core::FedCrossOptions options;
  options.alpha = 0.9;
  return std::make_unique<core::FedCross>(config, std::move(data), factory,
                                          options);
}

FlatParams RunToy(const std::string& algo, ExecMode exec, int threads,
                  int rounds, bool bf16 = false) {
  SetFlThreads(threads);
  std::unique_ptr<FlAlgorithm> server = MakeAlgorithm(algo, exec, bf16);
  for (int r = 0; r < rounds; ++r) server->RunRound(r);
  return server->GlobalParams();
}

// ---------------------------------------------------------------------------
// plan == layers, for all six algorithms, at fl_threads 1 and 4
// ---------------------------------------------------------------------------

TEST(PlanExecutionTest, AllAlgorithmsBitIdenticalAcrossExecAndThreads) {
  FlThreadsGuard guard;
  const char* algorithms[] = {"fedavg",  "fedprox", "scaffold",
                              "clusamp", "fedgen",  "fedcross"};
  for (const char* algo : algorithms) {
    FlatParams layers1 = RunToy(algo, ExecMode::kLayers, 1, 3);
    FlatParams plan1 = RunToy(algo, ExecMode::kPlan, 1, 3);
    FlatParams plan4 = RunToy(algo, ExecMode::kPlan, 4, 3);
    ExpectBitIdentical(layers1, plan1, std::string(algo) + ": plan@1");
    ExpectBitIdentical(layers1, plan4, std::string(algo) + ": plan@4");
  }
}

// ---------------------------------------------------------------------------
// plan == layers across the model zoo — all topologies lower natively, so
// every run below goes through the lockstep executor with zero fallbacks
// ---------------------------------------------------------------------------

FlatParams RunImageFedAvg(const models::ModelFactory& factory, ExecMode exec,
                          int rounds) {
  AlgorithmConfig config;
  config.clients_per_round = 3;
  config.train.local_epochs = 1;
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.train.exec = exec;
  config.seed = 23;
  FedAvg server(config, MakeImageFederated(4, 9), factory);
  for (int r = 0; r < rounds; ++r) server.RunRound(r);
  return server.GlobalParams();
}

TEST(PlanExecutionTest, ModelZooBitIdentical) {
  FlThreadsGuard guard;
  SetFlThreads(1);

  models::CnnConfig cnn;
  cnn.height = cnn.width = 8;
  cnn.num_classes = 4;
  cnn.conv1_channels = 4;
  cnn.conv2_channels = 8;
  cnn.fc_dim = 16;

  models::VggConfig vgg;
  vgg.height = vgg.width = 8;
  vgg.num_classes = 4;
  vgg.base_width = 4;
  vgg.fc_dim = 16;

  models::ResNetConfig resnet;  // residual blocks: skip-branch lowering
  resnet.height = resnet.width = 8;
  resnet.num_classes = 4;
  resnet.base_width = 4;

  struct ZooCase {
    const char* name;
    models::ModelFactory factory;
  };
  ZooCase zoo[] = {{"cnn", models::MakeCnn(cnn)},
                   {"vgg", models::MakeVgg(vgg)},
                   {"resnet", models::MakeResNet(resnet)}};
  for (ZooCase& z : zoo) {
    FlatParams layers = RunImageFedAvg(z.factory, ExecMode::kLayers, 2);
    FlatParams plan = RunImageFedAvg(z.factory, ExecMode::kPlan, 2);
    ExpectBitIdentical(layers, plan, z.name);
  }
}

// ---------------------------------------------------------------------------
// ResNet and LSTM: plan == layers across fl_threads and both round modes
// ---------------------------------------------------------------------------

models::ResNetConfig SmallResNet() {
  models::ResNetConfig resnet;
  resnet.height = resnet.width = 8;
  resnet.num_classes = 4;
  resnet.base_width = 4;
  return resnet;
}

models::LstmConfig SmallLstm() {
  models::LstmConfig lstm;  // vocab 32, seq 16
  lstm.embed_dim = 8;
  lstm.hidden_dim = 12;
  return lstm;
}

data::FederatedDataset MakeTextFederated(int num_clients, std::uint64_t seed) {
  data::SyntheticCharLmOptions text;
  text.num_clients = num_clients;
  text.mean_samples_per_client = 30;
  text.test_samples = 40;
  text.seed = seed;
  return data::MakeSyntheticCharLm(text);
}

FlatParams RunFedAvgMode(const models::ModelFactory& factory,
                         data::FederatedDataset data, ExecMode exec,
                         int threads, RoundMode mode, int rounds) {
  SetFlThreads(threads);
  AlgorithmConfig config;
  config.clients_per_round = 3;
  config.train.local_epochs = 1;
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.train.exec = exec;
  config.seed = 23;
  config.async.mode = mode;
  config.async.buffer_size = 2;
  FedAvg server(config, std::move(data), factory);
  server.Run(rounds, /*eval_every=*/rounds);
  return server.GlobalParams();
}

void CheckThreadAndModeInvariance(const models::ModelFactory& factory,
                                  const data::FederatedDataset& data,
                                  const std::string& what) {
  FlThreadsGuard guard;
  for (RoundMode mode : {RoundMode::kSync, RoundMode::kAsync}) {
    std::string tag = std::string(what) + "/" + RoundModeName(mode);
    FlatParams layers1 =
        RunFedAvgMode(factory, data, ExecMode::kLayers, 1, mode, 2);
    FlatParams plan1 =
        RunFedAvgMode(factory, data, ExecMode::kPlan, 1, mode, 2);
    FlatParams plan4 =
        RunFedAvgMode(factory, data, ExecMode::kPlan, 4, mode, 2);
    ExpectBitIdentical(layers1, plan1, tag + ": plan@1");
    ExpectBitIdentical(layers1, plan4, tag + ": plan@4");
  }
}

TEST(PlanExecutionTest, ResNetBitIdenticalAcrossThreadsAndRoundModes) {
  CheckThreadAndModeInvariance(models::MakeResNet(SmallResNet()),
                               MakeImageFederated(4, 9), "resnet");
}

TEST(PlanExecutionTest, LstmBitIdenticalAcrossThreadsAndRoundModes) {
  CheckThreadAndModeInvariance(models::MakeLstm(SmallLstm()),
                               MakeTextFederated(4, 13), "lstm");
}

// ---------------------------------------------------------------------------
// Support matrix + program properties
// ---------------------------------------------------------------------------

TEST(PlanCompileTest, SupportMatrixMatchesTopologies) {
  models::CnnConfig cnn;
  cnn.height = cnn.width = 8;
  cnn.num_classes = 4;
  models::VggConfig vgg;
  vgg.height = vgg.width = 8;
  vgg.num_classes = 4;
  models::ResNetConfig resnet;
  resnet.height = resnet.width = 8;
  resnet.num_classes = 4;
  models::LstmConfig lstm;

  EXPECT_TRUE(models::SupportsExecutionPlan(MlpFactory(6, 2), {4, 6}));
  EXPECT_TRUE(
      models::SupportsExecutionPlan(models::MakeCnn(cnn), {2, 3, 8, 8}));
  EXPECT_TRUE(
      models::SupportsExecutionPlan(models::MakeVgg(vgg), {2, 3, 8, 8}));
  EXPECT_TRUE(models::SupportsExecutionPlan(models::MakeResNet(resnet),
                                            {2, 3, 8, 8}));
  EXPECT_TRUE(models::SupportsExecutionPlan(models::MakeLstm(lstm),
                                            {2, 16}));
}

TEST(PlanCompileTest, FirstOpSkipsInputGradientAndProgramsAreCached) {
  models::ModelFactory factory = MlpFactory(6, 2);
  nn::Sequential model = factory();
  std::optional<nn::plan::Program> program =
      nn::plan::Program::Compile(model, {10, 6});
  ASSERT_TRUE(program.has_value());
  ASSERT_FALSE(program->ops.empty());
  // Nothing consumes the gradient of the pipeline input: the first linear
  // must skip its dX GEMM — that skip is part of plan mode's speedup.
  EXPECT_TRUE(program->ops.front().skip_dx);
  EXPECT_FALSE(program->ops.back().skip_dx);
  EXPECT_EQ(program->classes, 2);
  EXPECT_GT(program->arena_floats, 0);

  ModelPool pool(factory);
  ModelPool::Lease lease = pool.Acquire();
  const nn::plan::Program* p1 = pool.ProgramFor({10, 6}, lease->model);
  const nn::plan::Program* p2 = pool.ProgramFor({10, 6}, lease->model);
  const nn::plan::Program* p3 = pool.ProgramFor({5, 6}, lease->model);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1, p2);      // cached: same shape, same program object
  ASSERT_NE(p3, nullptr);
  EXPECT_NE(p1, p3);      // the epoch-tail short batch compiles its own
  EXPECT_EQ(p3->batch, 5);

  models::ResNetConfig resnet;
  resnet.height = resnet.width = 8;
  resnet.num_classes = 4;
  ModelPool resnet_pool(models::MakeResNet(resnet));
  ModelPool::Lease resnet_lease = resnet_pool.Acquire();
  const nn::plan::Program* rp =
      resnet_pool.ProgramFor({2, 3, 8, 8}, resnet_lease->model);
  ASSERT_NE(rp, nullptr);  // residual stacks compile natively now
  EXPECT_TRUE(resnet_pool.SupportsPlan({2, 3, 8, 8}));
  // The compiled residual graph carries skip-join steps.
  bool has_add = false;
  for (const nn::plan::Op& op : rp->ops) {
    if (op.kind == nn::plan::OpKind::kAdd) has_add = true;
  }
  EXPECT_TRUE(has_add);
}

// ---------------------------------------------------------------------------
// Steady-state allocation freedom
// ---------------------------------------------------------------------------

TEST(PlanExecutionTest, SteadyStatePlanTrainingAllocatesNoTensors) {
  const int dim = 6;
  auto dataset = fedcross::testing::MakeToyDataset(35, dim, 0.4f, 3);
  FlClient client(0, dataset);
  models::ModelFactory factory = MlpFactory(dim, 2);
  ModelPool pool(factory);
  FlatParams init = factory().ParamsToFlat();

  ClientTrainSpec spec;
  spec.options.local_epochs = 2;
  spec.options.batch_size = 10;  // 70 examples: short tail batch every epoch
  spec.options.lr = 0.05f;
  spec.options.exec = ExecMode::kPlan;

  LocalTrainResult result;
  for (int round = 0; round < 2; ++round) {
    util::Rng rng(100 + round);
    client.Train(pool, init, spec, rng, result);
  }

  Tensor::ResetHeapAllocations();
  for (int round = 2; round < 5; ++round) {
    util::Rng rng(100 + round);
    client.Train(pool, init, spec, rng, result);
  }
  EXPECT_EQ(Tensor::HeapAllocations(), 0u);
  EXPECT_EQ(pool.replicas_created(), 1u);
}

// The ResNet plan (grouped conv + residual skip refs) must also hold the
// allocation-free line once warm, and the executor's thread-local scratch
// (grouped instance tables, im2col buffers, staging slots) must stop
// growing: per-op scratch is size-asserted, so any regrowth is a bug.
TEST(PlanExecutionTest, SteadyStateResNetPlanIsAllocationAndScratchFree) {
  data::FederatedDataset federated = MakeImageFederated(2, 5);
  FlClient client(0, federated.client_train[0]);
  models::ModelFactory factory = models::MakeResNet(SmallResNet());
  ModelPool pool(factory);
  FlatParams init = factory().ParamsToFlat();

  ClientTrainSpec spec;
  spec.options.local_epochs = 2;
  spec.options.batch_size = 7;  // 40 examples: short tail batch every epoch
  spec.options.lr = 0.05f;
  spec.options.exec = ExecMode::kPlan;

  LocalTrainResult result;
  for (int round = 0; round < 2; ++round) {
    util::Rng rng(200 + round);
    client.Train(pool, init, spec, rng, result);
  }

  Tensor::ResetHeapAllocations();
  const std::int64_t scratch_before =
      nn::plan::testing::ScratchReallocEvents();
  for (int round = 2; round < 5; ++round) {
    util::Rng rng(200 + round);
    client.Train(pool, init, spec, rng, result);
  }
  EXPECT_EQ(Tensor::HeapAllocations(), 0u);
  EXPECT_EQ(nn::plan::testing::ScratchReallocEvents(), scratch_before);
  EXPECT_EQ(pool.replicas_created(), 1u);
}

// ---------------------------------------------------------------------------
// Gradient check of the lowered residual / LSTM steps: the plan executor
// produces both the analytic gradient and the perturbed-loss evaluations
// ---------------------------------------------------------------------------

std::vector<int> CyclicLabels(int batch, int classes) {
  std::vector<int> labels(batch);
  for (int b = 0; b < batch; ++b) labels[b] = b % classes;
  return labels;
}

// Directional-derivative check (see tests/test_util.h): perturb each
// parameter tensor along its own plan-computed gradient and compare the
// numeric derivative of the plan's loss against ||grad_p||.
double PlanGradCheckWorstRel(const models::ModelFactory& factory,
                             const Tensor& input,
                             const std::vector<int>& labels) {
  nn::Sequential model = factory();
  std::optional<nn::plan::Program> program =
      nn::plan::Program::Compile(model, input.shape());
  if (!program.has_value()) {
    ADD_FAILURE() << "model does not compile to a plan";
    return 1e9;
  }
  nn::plan::PlanState state;
  state.Bind(*program, model);
  nn::plan::PlanState* states[] = {&state};
  nn::plan::BatchRef batch{input.data(), labels.data()};
  float loss = 0.0f;
  int correct = 0;
  auto step = [&]() {
    nn::plan::ExecuteStep(*program, states, &batch, 1, &loss, &correct);
    return static_cast<double>(loss);
  };

  model.ZeroGrad();
  step();
  std::vector<nn::Param*> params = model.Params();
  std::vector<Tensor> grads;
  grads.reserve(params.size());
  for (nn::Param* p : params) grads.push_back(p->grad);

  const float eps = 1e-4f;
  double worst_rel = 0.0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    double norm = std::sqrt(grads[i].SquaredL2Norm());
    if (norm < 1e-2) continue;  // below float32 loss resolution
    Tensor original = params[i]->value;
    params[i]->value.Axpy(eps / static_cast<float>(norm), grads[i]);
    double loss_plus = step();
    params[i]->value = original;
    params[i]->value.Axpy(-eps / static_cast<float>(norm), grads[i]);
    double loss_minus = step();
    params[i]->value = original;
    double numeric = (loss_plus - loss_minus) / (2.0 * eps);
    double rel = std::abs(numeric - norm) / std::max(norm, 1e-4);
    worst_rel = std::max(worst_rel, rel);
  }
  return worst_rel;
}

constexpr double kGradTol = 0.08;  // float32 central differences are noisy

TEST(PlanGradCheckTest, ResNetLoweredSteps) {
  util::Rng rng(7);
  Tensor input = Tensor::RandomNormal({2, 3, 8, 8}, rng);
  double err = PlanGradCheckWorstRel(models::MakeResNet(SmallResNet()), input,
                                     CyclicLabels(2, 4));
  EXPECT_LT(err, kGradTol);
}

TEST(PlanGradCheckTest, LstmLoweredSteps) {
  util::Rng rng(8);
  models::LstmConfig lstm = SmallLstm();
  Tensor input({3, 16});
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    input.data()[i] = static_cast<float>(
        static_cast<int>(rng.Uniform() * lstm.vocab_size) % lstm.vocab_size);
  }
  double err = PlanGradCheckWorstRel(models::MakeLstm(lstm), input,
                                     CyclicLabels(3, lstm.num_classes));
  EXPECT_LT(err, kGradTol);
}

// ---------------------------------------------------------------------------
// bf16 replica storage: thread-invariant, within bf16 rounding of fp32,
// fingerprinted, and roughly half the pooled arena bytes
// ---------------------------------------------------------------------------

TEST(PlanBf16Test, ThreadInvariantAndWithinBf16RoundingOfFp32) {
  FlThreadsGuard guard;
  FlatParams fp32 = RunToy("fedcross", ExecMode::kPlan, 1, 3);
  FlatParams b1 = RunToy("fedcross", ExecMode::kPlan, 1, 3, /*bf16=*/true);
  FlatParams b4 = RunToy("fedcross", ExecMode::kPlan, 4, 3, /*bf16=*/true);
  // Determinism semantics: a bf16 run is a *different* deterministic
  // trajectory (every arena store rounds to nearest-even) that reproduces
  // exactly across --fl_threads; it is NOT bit-identical to fp32, which is
  // why the flag perturbs the config fingerprint.
  ExpectBitIdentical(b1, b4, "bf16: plan@1 vs plan@4");
  ASSERT_EQ(fp32.size(), b1.size());
  double diff2 = 0.0, ref2 = 0.0;
  for (std::size_t i = 0; i < fp32.size(); ++i) {
    double a = fp32[i], b = b1[i];
    diff2 += (a - b) * (a - b);
    ref2 += a * a;
  }
  ASSERT_GT(ref2, 0.0);
  double rel = std::sqrt(diff2 / ref2);
  // Only activations round (master weights and the optimizer path stay
  // fp32), so after three FedCross rounds the parameters must sit within
  // one bf16 mantissa step of the fp32 trajectory — rounding, not drift.
  EXPECT_LE(rel, 1.0 / 256);  // 2^-8
  EXPECT_GT(rel, 0.0);        // and it genuinely rounds (not silently fp32)
}

TEST(PlanBf16Test, PerturbsTheCheckpointFingerprint) {
  FlThreadsGuard guard;
  SetFlThreads(1);
  const char* path = "plan_bf16_fp.ckpt";
  models::ModelFactory factory = MlpFactory(6, 2);
  AlgorithmConfig config = ToyConfig(ExecMode::kPlan);
  config.train.plan_bf16 = true;
  FedAvg writer(config, MakeToyFederated(8, 35, 6, 41), factory);
  writer.Run(2, 1);
  ASSERT_TRUE(writer.SaveCheckpoint(path).ok());

  // The same bf16 configuration resumes...
  FedAvg same(config, MakeToyFederated(8, 35, 6, 41), factory);
  EXPECT_TRUE(same.LoadCheckpoint(path).ok());
  // ...but an fp32 run must refuse the checkpoint: the parameter
  // trajectories are not interchangeable (unlike ExecMode, which is).
  FedAvg other(ToyConfig(ExecMode::kPlan), MakeToyFederated(8, 35, 6, 41),
               factory);
  EXPECT_FALSE(other.LoadCheckpoint(path).ok());
  std::remove(path);
}

TEST(PlanBf16Test, ArenaGaugeDropsByHalfAtK20) {
  const bool was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  models::ModelFactory factory = models::MakeResNet(SmallResNet());
  nn::Sequential probe = factory();
  std::optional<nn::plan::Program> program =
      nn::plan::Program::Compile(probe, {10, 3, 8, 8});
  ASSERT_TRUE(program.has_value());
  obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("fl.pool.arena_bytes");
  const double base = gauge.Value();

  // Bind a K=20 pooled fleet and read this fleet's gauge contribution; the
  // states settle their accounting on destruction at scope exit.
  auto fleet_bytes = [&](bool bf16) {
    std::vector<std::unique_ptr<nn::Sequential>> models;
    std::vector<std::unique_ptr<nn::plan::PlanState>> states;
    for (int k = 0; k < 20; ++k) {
      models.push_back(std::make_unique<nn::Sequential>(factory()));
      states.push_back(std::make_unique<nn::plan::PlanState>());
      states.back()->Bind(*program, *models.back(), bf16);
    }
    return gauge.Value() - base;
  };
  const double fp32_bytes = fleet_bytes(false);
  const double bf16_bytes = fleet_bytes(true);
  EXPECT_GT(fp32_bytes, 0.0);
  EXPECT_LE(bf16_bytes, 0.55 * fp32_bytes);  // >= 45% cut (acceptance bar)
  EXPECT_NEAR(gauge.Value(), base, 1.0);     // destructors settled up
  obs::SetMetricsEnabled(was_enabled);
}

// ---------------------------------------------------------------------------
// Checkpoints cross exec modes (ExecMode is not fingerprinted)
// ---------------------------------------------------------------------------

TEST(PlanExecutionTest, CheckpointResumesAcrossExecModes) {
  FlThreadsGuard guard;
  SetFlThreads(1);
  const char* path = "plan_exec_mode.ckpt";

  models::ModelFactory factory = MlpFactory(6, 2);
  FedAvg full(ToyConfig(ExecMode::kLayers), MakeToyFederated(8, 35, 6, 41),
              factory);
  full.Run(4, 1);

  FedAvg first(ToyConfig(ExecMode::kLayers), MakeToyFederated(8, 35, 6, 41),
               factory);
  first.Run(2, 1);
  ASSERT_TRUE(first.SaveCheckpoint(path).ok());

  FedAvg resumed(ToyConfig(ExecMode::kPlan), MakeToyFederated(8, 35, 6, 41),
                 factory);
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());
  resumed.Run(4, 1);

  ExpectBitIdentical(full.GlobalParams(), resumed.GlobalParams(),
                     "layers run vs layers->plan resume");
  std::remove(path);
}

}  // namespace
}  // namespace fedcross::fl
