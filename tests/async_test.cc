// The event-driven async round engine. The invariants under test:
//   * clock profiles and jitter live on dedicated RNG streams, so enabling
//     the heterogeneous clock in sync mode cannot perturb a single training
//     trajectory (sync stays bit-identical to the clean run);
//   * virtual time and the whole async trajectory are pure functions of the
//     config — bit-identical across --fl_threads values and across reruns;
//   * staleness weights match the FedBuff family by hand;
//   * buffered aggregation beats the sync barrier on virtual time under
//     straggler-heavy fleets;
//   * FCRS v4 checkpoints capture the engine mid-buffer (save -> kill ->
//     load resumes bit-identically with uploads still in flight), while a
//     v3 downgrade still loads.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/fedcross.h"
#include "fl/algorithm.h"
#include "fl/clock.h"
#include "fl/clusamp.h"
#include "fl/fedavg.h"
#include "fl/fedcluster.h"
#include "fl/fedgen.h"
#include "fl/parallel.h"
#include "fl/scaffold.h"
#include "nn/linear.h"

namespace fedcross::fl {
namespace {

models::ModelFactory LinearFactory(int dim, std::uint64_t seed = 1) {
  return [dim, seed]() {
    util::Rng rng(seed);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(dim, 2, rng));
    return model;
  };
}

data::FederatedDataset MakeToyFederated(int num_clients, int per_client,
                                        int dim, std::uint64_t seed) {
  util::Rng rng(seed);
  data::FederatedDataset federated;
  federated.num_classes = 2;
  auto gen_example = [&](int k, std::vector<float>& features) {
    float mean = k == 0 ? -1.0f : 1.0f;
    for (int d = 0; d < dim; ++d) {
      features.push_back(mean + static_cast<float>(rng.Normal(0.0, 0.6)));
    }
  };
  for (int c = 0; c < num_clients; ++c) {
    std::vector<float> features;
    std::vector<int> labels;
    for (int i = 0; i < per_client; ++i) {
      int k = rng.Uniform() < 0.9 ? c % 2 : 1 - c % 2;
      gen_example(k, features);
      labels.push_back(k);
    }
    federated.client_train.push_back(std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{dim}, std::move(features), std::move(labels), 2));
  }
  std::vector<float> features;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    gen_example(i % 2, features);
    labels.push_back(i % 2);
  }
  federated.test = std::make_shared<data::InMemoryDataset>(
      Tensor::Shape{dim}, std::move(features), std::move(labels), 2);
  return federated;
}

AlgorithmConfig ToyConfig() {
  AlgorithmConfig config;
  config.clients_per_round = 4;
  config.train.local_epochs = 1;
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.seed = 17;
  return config;
}

// A straggler-prone fleet on a heterogeneous clock, with a per-dispatch
// deadline so slow attempts time out and re-dispatch.
AlgorithmConfig AsyncConfig() {
  AlgorithmConfig config = ToyConfig();
  config.async.mode = RoundMode::kAsync;
  config.async.buffer_size = 3;
  config.async.dispatch_timeout = 0.5;
  config.async.max_retries = 1;
  config.async.clock.compute_speed_min = 25.0;
  config.async.clock.compute_speed_max = 400.0;
  config.async.clock.bandwidth_min = 1e6;
  config.async.clock.bandwidth_max = 1e9;
  config.async.clock.jitter = 0.1;
  config.faults.profile.dropout_prob = 0.1;
  config.faults.profile.straggler_prob = 0.4;
  return config;
}

std::unique_ptr<FlAlgorithm> MakeAlgorithm(const std::string& name,
                                           AlgorithmConfig config) {
  data::FederatedDataset data = MakeToyFederated(8, 40, 4, 41);
  models::ModelFactory factory = LinearFactory(4);
  if (name == "FedAvg") {
    return std::make_unique<FedAvg>(config, std::move(data),
                                    std::move(factory));
  }
  if (name == "FedProx") {
    return std::make_unique<FedProx>(config, std::move(data),
                                     std::move(factory), 0.1f);
  }
  if (name == "SCAFFOLD") {
    return std::make_unique<Scaffold>(config, std::move(data),
                                      std::move(factory));
  }
  if (name == "FedGen") {
    return std::make_unique<FedGen>(config, std::move(data),
                                    std::move(factory));
  }
  if (name == "CluSamp") {
    return std::make_unique<CluSamp>(config, std::move(data),
                                     std::move(factory));
  }
  if (name == "FedCluster") {
    return std::make_unique<FedCluster>(config, std::move(data),
                                        std::move(factory), /*num_clusters=*/2);
  }
  if (name == "FedCross") {
    core::FedCrossOptions options;
    options.alpha = 0.9;
    return std::make_unique<core::FedCross>(config, std::move(data),
                                            std::move(factory), options);
  }
  ADD_FAILURE() << "unknown algorithm " << name;
  return nullptr;
}

const char* kAllAlgorithms[] = {"FedAvg",  "FedProx",    "SCAFFOLD", "FedGen",
                                "CluSamp", "FedCluster", "FedCross"};

void ExpectBitIdentical(const FlatParams& a, const FlatParams& b) {
  ASSERT_EQ(a.size(), b.size());
  if (a.empty()) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

// Restores the FL pool size when a test that varies it exits (including on
// assertion failure), so later tests see the default again.
struct ThreadGuard {
  ~ThreadGuard() { SetFlThreads(0); }
};

// --------------------------------------------------------------------------
// Virtual clock primitives
// --------------------------------------------------------------------------

TEST(ClockTest, ProfileIsDeterministicPerClientAndBounded) {
  ClockModel model;
  model.compute_speed_min = 10.0;
  model.compute_speed_max = 1000.0;
  model.bandwidth_min = 1e5;
  model.bandwidth_max = 1e9;

  bool saw_distinct_speed = false;
  for (std::int64_t id = 0; id < 64; ++id) {
    ClockProfile a = DrawClockProfile(model, /*seed=*/7, id);
    ClockProfile b = DrawClockProfile(model, /*seed=*/7, id);
    EXPECT_EQ(a.compute_speed, b.compute_speed) << id;
    EXPECT_EQ(a.bandwidth, b.bandwidth) << id;
    EXPECT_GE(a.compute_speed, model.compute_speed_min);
    EXPECT_LE(a.compute_speed, model.compute_speed_max);
    EXPECT_GE(a.bandwidth, model.bandwidth_min);
    EXPECT_LE(a.bandwidth, model.bandwidth_max);
    ClockProfile other = DrawClockProfile(model, /*seed=*/7, id + 1);
    saw_distinct_speed |= other.compute_speed != a.compute_speed;
  }
  EXPECT_TRUE(saw_distinct_speed) << "heterogeneous model drew a flat fleet";

  // Different run seeds re-roll the fleet.
  ClockProfile reseeded = DrawClockProfile(model, /*seed=*/8, 0);
  ClockProfile original = DrawClockProfile(model, /*seed=*/7, 0);
  EXPECT_NE(reseeded.compute_speed, original.compute_speed);

  // The homogeneous default collapses to the exact configured point.
  ClockModel flat;
  EXPECT_FALSE(flat.Heterogeneous());
  ClockProfile p = DrawClockProfile(flat, /*seed=*/7, 3);
  EXPECT_EQ(p.compute_speed, 100.0);
  EXPECT_EQ(p.bandwidth, 1e9);
}

TEST(ClockTest, ClockSeedSeparatesJobs) {
  EXPECT_EQ(ClockSeed(1, 2, 3, 4), ClockSeed(1, 2, 3, 4));
  EXPECT_NE(ClockSeed(1, 2, 3, 4), ClockSeed(1, 2, 3, 5));
  EXPECT_NE(ClockSeed(1, 2, 3, 4), ClockSeed(1, 2, 4, 4));
  EXPECT_NE(ClockSeed(1, 2, 3, 4), ClockSeed(1, 3, 3, 4));
  EXPECT_NE(ClockSeed(1, 2, 3, 4), ClockSeed(2, 2, 3, 4));
}

TEST(ClockTest, SimulatedDurationComposes) {
  ClockProfile profile;
  profile.compute_speed = 50.0;  // steps / s
  profile.bandwidth = 1000.0;    // bytes / s
  // 200 bytes down + 300 up at 1000 B/s = 0.5 s; 2x slowdown * 25 steps at
  // 50 steps/s = 1.0 s, jittered by 1.1 -> 1.1 s.
  double d = SimulatedDuration(profile, /*slowdown=*/2.0, /*steps=*/25.0,
                               /*wire_bytes_down=*/200, /*wire_bytes_up=*/300,
                               /*jitter_factor=*/1.1);
  EXPECT_NEAR(d, 0.5 + 1.1, 1e-12);
}

TEST(ClockTest, StalenessWeightMatchesFedBuffFamily) {
  EXPECT_EQ(StalenessWeight(StalenessPolicy::kConstant, 0.5, 0), 1.0);
  EXPECT_EQ(StalenessWeight(StalenessPolicy::kConstant, 0.5, 9), 1.0);
  EXPECT_EQ(StalenessWeight(StalenessPolicy::kPolynomial, 0.5, 0), 1.0);
  EXPECT_NEAR(StalenessWeight(StalenessPolicy::kPolynomial, 0.5, 3), 0.5,
              1e-12);
  EXPECT_NEAR(StalenessWeight(StalenessPolicy::kPolynomial, 1.0, 4), 0.2,
              1e-12);
  double prev = 1.0;
  for (int tau = 1; tau < 8; ++tau) {
    double w = StalenessWeight(StalenessPolicy::kPolynomial, 0.5, tau);
    EXPECT_LT(w, prev) << tau;
    prev = w;
  }
}

TEST(ClockTest, ParseRoundTrips) {
  RoundMode mode = RoundMode::kSync;
  EXPECT_TRUE(ParseRoundMode("async", &mode));
  EXPECT_EQ(mode, RoundMode::kAsync);
  EXPECT_TRUE(ParseRoundMode(RoundModeName(RoundMode::kSync), &mode));
  EXPECT_EQ(mode, RoundMode::kSync);
  EXPECT_FALSE(ParseRoundMode("bogus", &mode));

  StalenessPolicy policy = StalenessPolicy::kConstant;
  EXPECT_TRUE(ParseStalenessPolicy("polynomial", &policy));
  EXPECT_EQ(policy, StalenessPolicy::kPolynomial);
  EXPECT_TRUE(
      ParseStalenessPolicy(StalenessPolicyName(StalenessPolicy::kConstant),
                           &policy));
  EXPECT_EQ(policy, StalenessPolicy::kConstant);
  EXPECT_FALSE(ParseStalenessPolicy("bogus", &policy));
}

// --------------------------------------------------------------------------
// Sync mode: the clock is observation-only
// --------------------------------------------------------------------------

TEST(SyncClockTest, HeterogeneousClockCannotPerturbTraining) {
  // The clock stream is independent of the training / fault / codec
  // streams, so a sync run on a wildly heterogeneous fleet must produce the
  // exact parameters of the clean run — only virtual time may differ.
  for (const char* name : kAllAlgorithms) {
    SCOPED_TRACE(name);
    std::unique_ptr<FlAlgorithm> clean = MakeAlgorithm(name, ToyConfig());
    clean->Run(3, /*eval_every=*/1);

    AlgorithmConfig clocked_config = ToyConfig();
    clocked_config.async.clock.compute_speed_min = 5.0;
    clocked_config.async.clock.compute_speed_max = 500.0;
    clocked_config.async.clock.bandwidth_min = 1e5;
    clocked_config.async.clock.bandwidth_max = 1e8;
    clocked_config.async.clock.jitter = 0.25;
    std::unique_ptr<FlAlgorithm> clocked = MakeAlgorithm(name, clocked_config);
    clocked->Run(3, /*eval_every=*/1);

    ExpectBitIdentical(clean->GlobalParams(), clocked->GlobalParams());
    EXPECT_GT(clocked->virtual_now(), 0.0);
    EXPECT_NE(clocked->virtual_now(), clean->virtual_now());
    EXPECT_EQ(clocked->inflight_dispatches(), 0);
  }
}

TEST(SyncClockTest, VirtualTimeIsThreadCountInvariant) {
  ThreadGuard guard;
  AlgorithmConfig config = ToyConfig();
  config.async.clock.compute_speed_min = 5.0;
  config.async.clock.compute_speed_max = 500.0;
  config.async.clock.jitter = 0.25;

  SetFlThreads(1);
  std::unique_ptr<FlAlgorithm> sequential = MakeAlgorithm("FedAvg", config);
  sequential->Run(3, /*eval_every=*/1);

  SetFlThreads(4);
  std::unique_ptr<FlAlgorithm> pooled = MakeAlgorithm("FedAvg", config);
  pooled->Run(3, /*eval_every=*/1);

  EXPECT_EQ(sequential->virtual_now(), pooled->virtual_now());
  ExpectBitIdentical(sequential->GlobalParams(), pooled->GlobalParams());
}

// --------------------------------------------------------------------------
// Async mode: determinism
// --------------------------------------------------------------------------

TEST(AsyncTest, TrajectoryIsThreadCountInvariant) {
  // The whole async trajectory — parameters, virtual time, fault and waste
  // accounting — is a pure function of the config, independent of how many
  // threads resolve the dispatches.
  ThreadGuard guard;
  for (const char* name : kAllAlgorithms) {
    SCOPED_TRACE(name);
    SetFlThreads(1);
    std::unique_ptr<FlAlgorithm> sequential =
        MakeAlgorithm(name, AsyncConfig());
    sequential->Run(4, /*eval_every=*/1);

    SetFlThreads(4);
    std::unique_ptr<FlAlgorithm> pooled = MakeAlgorithm(name, AsyncConfig());
    pooled->Run(4, /*eval_every=*/1);

    ExpectBitIdentical(sequential->GlobalParams(), pooled->GlobalParams());
    EXPECT_EQ(sequential->virtual_now(), pooled->virtual_now());
    EXPECT_EQ(sequential->model_version(), pooled->model_version());
    EXPECT_EQ(sequential->inflight_dispatches(),
              pooled->inflight_dispatches());
    EXPECT_EQ(sequential->fault_stats().timeouts,
              pooled->fault_stats().timeouts);
    EXPECT_EQ(sequential->fault_stats().retries,
              pooled->fault_stats().retries);
    EXPECT_EQ(sequential->comm().total_wasted_bytes(),
              pooled->comm().total_wasted_bytes());
    EXPECT_EQ(sequential->comm().total_wire_wasted_bytes(),
              pooled->comm().total_wire_wasted_bytes());
  }
}

TEST(AsyncTest, RerunsAreBitIdentical) {
  std::unique_ptr<FlAlgorithm> first = MakeAlgorithm("FedAvg", AsyncConfig());
  first->Run(4, /*eval_every=*/1);
  std::unique_ptr<FlAlgorithm> second = MakeAlgorithm("FedAvg", AsyncConfig());
  second->Run(4, /*eval_every=*/1);
  ExpectBitIdentical(first->GlobalParams(), second->GlobalParams());
  EXPECT_EQ(first->virtual_now(), second->virtual_now());
}

TEST(AsyncTest, EngineStateAdvances) {
  std::unique_ptr<FlAlgorithm> algo = MakeAlgorithm("FedAvg", AsyncConfig());
  algo->Run(4, /*eval_every=*/1);
  // One aggregation per round, a buffered backlog (4 dispatched, 3
  // collected per round, minus faults), and a moving clock.
  EXPECT_EQ(algo->model_version(), 4);
  EXPECT_GT(algo->virtual_now(), 0.0);
  EXPECT_GE(algo->inflight_dispatches(), 0);
}

TEST(AsyncTest, TimeoutsRetryAndCountWaste) {
  // A deadline far below any attainable duration forces every dispatch
  // through the retry ladder and into the straggler bin, with all traffic
  // accounted as wasted.
  AlgorithmConfig config = ToyConfig();
  config.async.mode = RoundMode::kAsync;
  config.async.buffer_size = 2;
  config.async.dispatch_timeout = 1e-9;
  config.async.max_retries = 2;
  std::unique_ptr<FlAlgorithm> algo = MakeAlgorithm("FedAvg", config);
  algo->Run(2, /*eval_every=*/1);

  // 2 rounds x 4 slots x (1 + 2 retries) attempts, all timing out.
  EXPECT_EQ(algo->fault_stats().timeouts, 24);
  EXPECT_EQ(algo->fault_stats().retries, 16);
  EXPECT_EQ(algo->fault_stats().stragglers, 8);
  EXPECT_GT(algo->comm().total_wasted_bytes(), 0u);
  EXPECT_GT(algo->comm().total_wire_wasted_bytes(), 0u);
  // Nothing ever lands: the global model never moves off its init.
  ExpectBitIdentical(algo->GlobalParams(),
                     MakeAlgorithm("FedAvg", config)->GlobalParams());
}

TEST(AsyncTest, SyncDropoutCountsWastedDispatchBytes) {
  AlgorithmConfig config = ToyConfig();
  config.faults.profile.dropout_prob = 1.0;
  std::unique_ptr<FlAlgorithm> algo = MakeAlgorithm("FedAvg", config);
  algo->Run(2, /*eval_every=*/1);
  // Every dispatch was lost, so the whole download side is wasted and no
  // upload happened at all.
  EXPECT_EQ(algo->comm().total_wasted_bytes(),
            algo->comm().total_download_bytes());
  EXPECT_EQ(algo->comm().total_upload_bytes(), 0u);
}

// --------------------------------------------------------------------------
// Async beats the sync barrier on virtual time under stragglers
// --------------------------------------------------------------------------

TEST(AsyncTest, BuffersBeatTheBarrierUnderStragglers) {
  // Same fleet, same faults: sync pays the max over all slots every round
  // (the barrier waits for the slowest straggler), async pays only until
  // the buffer fills with the earliest arrivals.
  AlgorithmConfig sync_config = ToyConfig();
  sync_config.async.clock.compute_speed_min = 25.0;
  sync_config.async.clock.compute_speed_max = 400.0;
  sync_config.faults.profile.straggler_prob = 0.6;

  AlgorithmConfig async_config = sync_config;
  async_config.async.mode = RoundMode::kAsync;
  async_config.async.buffer_size = 2;

  std::unique_ptr<FlAlgorithm> sync_run = MakeAlgorithm("FedAvg", sync_config);
  sync_run->Run(8, /*eval_every=*/8);
  std::unique_ptr<FlAlgorithm> async_run =
      MakeAlgorithm("FedAvg", async_config);
  async_run->Run(8, /*eval_every=*/8);

  EXPECT_GT(sync_run->virtual_now(), 0.0);
  EXPECT_LT(async_run->virtual_now(), 0.7 * sync_run->virtual_now());
}

// --------------------------------------------------------------------------
// FCRS v4: mid-buffer resume and the v3 downgrade
// --------------------------------------------------------------------------

TEST(AsyncCheckpointTest, MidBufferResumeIsBitIdentical) {
  for (const char* name : {"FedAvg", "FedCross"}) {
    SCOPED_TRACE(name);
    const std::string path = std::string("async_ckpt_") + name + ".bin";
    AlgorithmConfig config = AsyncConfig();

    std::unique_ptr<FlAlgorithm> full = MakeAlgorithm(name, config);
    full->Run(6, /*eval_every=*/1);

    // Interrupt with uploads still in flight: the v4 checkpoint must carry
    // the buffered arrivals, the clock, and the version counters.
    std::int64_t inflight_at_save = 0;
    {
      std::unique_ptr<FlAlgorithm> first = MakeAlgorithm(name, config);
      first->Run(3, /*eval_every=*/1);
      inflight_at_save = first->inflight_dispatches();
      ASSERT_TRUE(first->SaveCheckpoint(path).ok());
    }
    ASSERT_GT(inflight_at_save, 0) << "test must interrupt mid-buffer";

    std::unique_ptr<FlAlgorithm> resumed = MakeAlgorithm(name, config);
    ASSERT_TRUE(resumed->LoadCheckpoint(path).ok());
    EXPECT_EQ(resumed->completed_rounds(), 3);
    EXPECT_EQ(resumed->inflight_dispatches(), inflight_at_save);
    resumed->Run(6, /*eval_every=*/1);

    ExpectBitIdentical(full->GlobalParams(), resumed->GlobalParams());
    EXPECT_EQ(full->virtual_now(), resumed->virtual_now());
    EXPECT_EQ(full->model_version(), resumed->model_version());
    EXPECT_EQ(full->inflight_dispatches(), resumed->inflight_dispatches());
    EXPECT_EQ(full->fault_stats().timeouts, resumed->fault_stats().timeouts);
    EXPECT_EQ(full->fault_stats().retries, resumed->fault_stats().retries);
    EXPECT_EQ(full->comm().total_wasted_bytes(),
              resumed->comm().total_wasted_bytes());
    EXPECT_EQ(full->comm().total_upload_bytes(),
              resumed->comm().total_upload_bytes());
    std::remove(path.c_str());
  }
}

TEST(AsyncCheckpointTest, V3DowngradeStillLoads) {
  // Pre-engine checkpoints carry no wasted totals and no engine block; a
  // sync run downgraded to v3 must round-trip and resume bit-identically
  // (the engine state is observational in sync mode).
  const std::string path = "async_ckpt_v3.bin";
  AlgorithmConfig config = ToyConfig();

  std::unique_ptr<FlAlgorithm> full = MakeAlgorithm("FedAvg", config);
  full->Run(5, /*eval_every=*/1);

  {
    std::unique_ptr<FlAlgorithm> first = MakeAlgorithm("FedAvg", config);
    first->Run(3, /*eval_every=*/1);
    ASSERT_TRUE(first->SaveCheckpoint(path, /*version=*/3).ok());
  }
  std::unique_ptr<FlAlgorithm> resumed = MakeAlgorithm("FedAvg", config);
  ASSERT_TRUE(resumed->LoadCheckpoint(path).ok());
  EXPECT_EQ(resumed->completed_rounds(), 3);
  // v3 carries no engine block: the restored engine starts cold.
  EXPECT_EQ(resumed->virtual_now(), 0.0);
  EXPECT_EQ(resumed->inflight_dispatches(), 0);
  EXPECT_EQ(resumed->comm().total_wasted_bytes(), 0u);
  resumed->Run(5, /*eval_every=*/1);
  ExpectBitIdentical(full->GlobalParams(), resumed->GlobalParams());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedcross::fl
