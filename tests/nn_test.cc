#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/flatten.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/norm.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace fedcross::nn {
namespace {

// ---------------------------------------------------------------- Linear

TEST(LinearTest, OutputShapeAndBias) {
  util::Rng rng(1);
  Linear layer(3, 2, rng);
  Tensor input = Tensor::Zeros({4, 3});
  Tensor output = layer.Forward(input, false);
  EXPECT_EQ(output.dim(0), 4);
  EXPECT_EQ(output.dim(1), 2);
  // Zero input -> outputs equal the (zero-initialised) bias.
  for (std::int64_t i = 0; i < output.numel(); ++i) {
    EXPECT_EQ(output.at(i), 0.0f);
  }
}

TEST(LinearTest, KnownComputation) {
  util::Rng rng(1);
  Linear layer(2, 1, rng);
  std::vector<Param*> params;
  layer.CollectParams(params);
  ASSERT_EQ(params.size(), 2u);
  params[0]->value = Tensor::FromVector({2, 1}, {2.0f, 3.0f});  // W
  params[1]->value = Tensor::FromVector({1}, {0.5f});           // b
  Tensor input = Tensor::FromVector({1, 2}, {1.0f, -1.0f});
  Tensor output = layer.Forward(input, false);
  EXPECT_FLOAT_EQ(output.at(0), 2.0f - 3.0f + 0.5f);
}

TEST(LinearTest, GradAccumulatesAcrossBatches) {
  util::Rng rng(2);
  Linear layer(2, 2, rng);
  Tensor input = Tensor::FromVector({1, 2}, {1.0f, 1.0f});
  Tensor grad = Tensor::FromVector({1, 2}, {1.0f, 0.0f});
  layer.Forward(input, true);
  layer.Backward(grad);
  layer.Forward(input, true);
  layer.Backward(grad);
  std::vector<Param*> params;
  layer.CollectParams(params);
  // dW accumulated twice.
  EXPECT_FLOAT_EQ(params[0]->grad.at(0, 0), 2.0f);
}

// ----------------------------------------------------------- Activations

TEST(ReluTest, ClampsNegatives) {
  Relu relu;
  Tensor input = Tensor::FromVector({4}, {-1, 0, 2, -3});
  Tensor output = relu.Forward(input, false);
  EXPECT_EQ(output.at(0), 0.0f);
  EXPECT_EQ(output.at(1), 0.0f);
  EXPECT_EQ(output.at(2), 2.0f);
  EXPECT_EQ(output.at(3), 0.0f);
}

TEST(ReluTest, BackwardMasksByInputSign) {
  Relu relu;
  Tensor input = Tensor::FromVector({3}, {-1, 1, 2});
  relu.Forward(input, true);
  Tensor grad = Tensor::FromVector({3}, {5, 5, 5});
  Tensor grad_input = relu.Backward(grad);
  EXPECT_EQ(grad_input.at(0), 0.0f);
  EXPECT_EQ(grad_input.at(1), 5.0f);
  EXPECT_EQ(grad_input.at(2), 5.0f);
}

TEST(TanhTest, Saturation) {
  Tanh tanh_layer;
  Tensor input = Tensor::FromVector({2}, {100.0f, -100.0f});
  Tensor output = tanh_layer.Forward(input, false);
  EXPECT_NEAR(output.at(0), 1.0f, 1e-5f);
  EXPECT_NEAR(output.at(1), -1.0f, 1e-5f);
}

TEST(SigmoidTest, Midpoint) {
  Sigmoid sigmoid;
  Tensor input = Tensor::Zeros({1});
  EXPECT_FLOAT_EQ(sigmoid.Forward(input, false).at(0), 0.5f);
}

// --------------------------------------------------------------- Pooling

TEST(MaxPoolTest, SelectsWindowMax) {
  MaxPool2d pool(2, 2);
  Tensor input = Tensor::FromVector({1, 1, 2, 2}, {1, 9, 3, 4});
  Tensor output = pool.Forward(input, false);
  EXPECT_EQ(output.numel(), 1);
  EXPECT_FLOAT_EQ(output.at(0), 9.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(2, 2);
  Tensor input = Tensor::FromVector({1, 1, 2, 2}, {1, 9, 3, 4});
  pool.Forward(input, true);
  Tensor grad = Tensor::FromVector({1, 1, 1, 1}, {7.0f});
  Tensor grad_input = pool.Backward(grad);
  EXPECT_FLOAT_EQ(grad_input.at(0), 0.0f);
  EXPECT_FLOAT_EQ(grad_input.at(1), 7.0f);
  EXPECT_FLOAT_EQ(grad_input.at(2), 0.0f);
}

TEST(MaxPoolTest, HalvesSpatialDims) {
  MaxPool2d pool(2, 2);
  Tensor input = Tensor::Zeros({2, 3, 8, 6});
  Tensor output = pool.Forward(input, false);
  EXPECT_EQ(output.shape(), (Tensor::Shape{2, 3, 4, 3}));
}

TEST(GlobalAvgPoolTest, AveragesPlane) {
  GlobalAvgPool pool;
  Tensor input = Tensor::FromVector({1, 2, 1, 2}, {1, 3, 10, 20});
  Tensor output = pool.Forward(input, false);
  EXPECT_EQ(output.shape(), (Tensor::Shape{1, 2}));
  EXPECT_FLOAT_EQ(output.at(0), 2.0f);
  EXPECT_FLOAT_EQ(output.at(1), 15.0f);
}

// -------------------------------------------------------------- GroupNorm

TEST(GroupNormTest, NormalisesPerGroup) {
  GroupNorm norm(4, 2);
  util::Rng rng(3);
  Tensor input = Tensor::RandomNormal({2, 4, 3, 3}, rng, 5.0f, 2.0f);
  Tensor output = norm.Forward(input, true);
  // Each (sample, group) slice should have ~zero mean and ~unit variance
  // (gamma=1, beta=0 initially).
  int area = 9;
  int chans_per_group = 2;
  for (int b = 0; b < 2; ++b) {
    for (int g = 0; g < 2; ++g) {
      double mean = 0.0, var = 0.0;
      const float* base =
          output.data() + ((b * 4) + g * chans_per_group) * area;
      int count = chans_per_group * area;
      for (int i = 0; i < count; ++i) mean += base[i];
      mean /= count;
      for (int i = 0; i < count; ++i) {
        var += (base[i] - mean) * (base[i] - mean);
      }
      var /= count;
      EXPECT_NEAR(mean, 0.0, 1e-4);
      EXPECT_NEAR(var, 1.0, 1e-2);
    }
  }
}

TEST(GroupNormTest, GammaBetaApplied) {
  GroupNorm norm(2, 1);
  std::vector<Param*> params;
  norm.CollectParams(params);
  params[0]->value.Fill(3.0f);   // gamma
  params[1]->value.Fill(-1.0f);  // beta
  util::Rng rng(4);
  Tensor input = Tensor::RandomNormal({1, 2, 2, 2}, rng);
  Tensor output = norm.Forward(input, true);
  // Output mean should be beta (= -1) since normalised mean is 0.
  EXPECT_NEAR(output.Mean(), -1.0f, 1e-4f);
}

// ---------------------------------------------------------------- Dropout

TEST(DropoutTest, EvalIsIdentity) {
  Dropout dropout(0.5f, 1);
  Tensor input = Tensor::Full({100}, 2.0f);
  Tensor output = dropout.Forward(input, /*train=*/false);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(output.at(i), 2.0f);
}

TEST(DropoutTest, TrainZeroesAndRescales) {
  Dropout dropout(0.5f, 2);
  Tensor input = Tensor::Full({2000}, 1.0f);
  Tensor output = dropout.Forward(input, /*train=*/true);
  int zeros = 0;
  for (std::int64_t i = 0; i < 2000; ++i) {
    if (output.at(i) == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(output.at(i), 2.0f);  // 1/(1-0.5)
    }
  }
  EXPECT_NEAR(zeros, 1000, 100);
  // Inverted dropout keeps the expectation.
  EXPECT_NEAR(output.Mean(), 1.0f, 0.1f);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout dropout(0.5f, 3);
  Tensor input = Tensor::Full({100}, 1.0f);
  Tensor output = dropout.Forward(input, true);
  Tensor grad = Tensor::Full({100}, 1.0f);
  Tensor grad_input = dropout.Backward(grad);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(grad_input.at(i), output.at(i));
  }
}

// ---------------------------------------------------------------- Flatten

TEST(FlattenTest, RoundTrip) {
  Flatten flatten;
  Tensor input = Tensor::Zeros({2, 3, 4, 5});
  Tensor output = flatten.Forward(input, false);
  EXPECT_EQ(output.shape(), (Tensor::Shape{2, 60}));
  Tensor grad = Tensor::Zeros({2, 60});
  Tensor grad_input = flatten.Backward(grad);
  EXPECT_EQ(grad_input.shape(), (Tensor::Shape{2, 3, 4, 5}));
}

// -------------------------------------------------------------- Embedding

TEST(EmbeddingTest, LooksUpRows) {
  util::Rng rng(5);
  Embedding embedding(4, 3, rng);
  std::vector<Param*> params;
  embedding.CollectParams(params);
  params[0]->value =
      Tensor::FromVector({4, 3}, {0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3});
  Tensor input = Tensor::FromVector({1, 2}, {2.0f, 0.0f});
  Tensor output = embedding.Forward(input, false);
  EXPECT_EQ(output.shape(), (Tensor::Shape{1, 2, 3}));
  EXPECT_FLOAT_EQ(output.at(0), 2.0f);
  EXPECT_FLOAT_EQ(output.at(3), 0.0f);
}

TEST(EmbeddingTest, BackwardScattersIntoRows) {
  util::Rng rng(6);
  Embedding embedding(3, 2, rng);
  Tensor input = Tensor::FromVector({1, 2}, {1.0f, 1.0f});
  embedding.Forward(input, true);
  Tensor grad = Tensor::Full({1, 2, 2}, 1.0f);
  Tensor grad_input = embedding.Backward(grad);
  EXPECT_EQ(grad_input.numel(), 0);  // discrete input: no gradient
  std::vector<Param*> params;
  embedding.CollectParams(params);
  // Row 1 hit twice; rows 0 and 2 untouched.
  EXPECT_FLOAT_EQ(params[0]->grad.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(params[0]->grad.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(params[0]->grad.at(2, 1), 0.0f);
}

// ------------------------------------------------------------------- LSTM

TEST(LstmTest, OutputShape) {
  util::Rng rng(7);
  Lstm lstm(4, 6, rng);
  Tensor input = Tensor::Zeros({3, 5, 4});
  Tensor output = lstm.Forward(input, false);
  EXPECT_EQ(output.shape(), (Tensor::Shape{3, 6}));
}

TEST(LstmTest, HiddenStateIsBounded) {
  util::Rng rng(8);
  Lstm lstm(4, 6, rng);
  Tensor input = Tensor::RandomNormal({1, 10, 4}, rng, 0.0f, 3.0f);
  Tensor output = lstm.Forward(input, false);
  // h = o * tanh(c): |h| < 1 always.
  for (std::int64_t i = 0; i < output.numel(); ++i) {
    EXPECT_LT(std::abs(output.at(i)), 1.0f);
  }
}

TEST(LstmTest, SequenceOrderMatters) {
  util::Rng rng(9);
  Lstm lstm(2, 4, rng);
  Tensor forward_seq = Tensor::FromVector({1, 3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor reverse_seq = Tensor::FromVector({1, 3, 2}, {1, 1, 0, 1, 1, 0});
  Tensor out1 = lstm.Forward(forward_seq, false);
  Tensor out2 = lstm.Forward(reverse_seq, false);
  double diff = 0.0;
  for (std::int64_t i = 0; i < out1.numel(); ++i) {
    diff += std::abs(out1.at(i) - out2.at(i));
  }
  EXPECT_GT(diff, 1e-4);
}

// ------------------------------------------------------------- Sequential

TEST(SequentialTest, ParamLayoutIsDeterministic) {
  auto build = [] {
    util::Rng rng(11);
    Sequential model;
    model.Add(std::make_unique<Linear>(4, 8, rng));
    model.Add(std::make_unique<Relu>());
    model.Add(std::make_unique<Linear>(8, 2, rng));
    return model;
  };
  Sequential a = build();
  Sequential b = build();
  EXPECT_EQ(a.NumParams(), b.NumParams());
  EXPECT_EQ(a.ParamsToFlat(), b.ParamsToFlat());
}

TEST(SequentialTest, FlatRoundTrip) {
  util::Rng rng(12);
  Sequential model;
  model.Add(std::make_unique<Linear>(3, 3, rng));
  std::vector<float> flat = model.ParamsToFlat();
  for (float& value : flat) value += 1.0f;
  model.ParamsFromFlat(flat);
  EXPECT_EQ(model.ParamsToFlat(), flat);
}

TEST(SequentialTest, NumParamsMatchesLayerSum) {
  util::Rng rng(13);
  Sequential model;
  model.Add(std::make_unique<Linear>(4, 8, rng));  // 4*8 + 8
  model.Add(std::make_unique<Linear>(8, 2, rng));  // 8*2 + 2
  EXPECT_EQ(model.NumParams(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(SequentialTest, ZeroGradClearsAll) {
  util::Rng rng(14);
  Sequential model;
  model.Add(std::make_unique<Linear>(2, 2, rng));
  Tensor input = Tensor::Full({1, 2}, 1.0f);
  model.Forward(input, true);
  model.Backward(Tensor::Full({1, 2}, 1.0f));
  model.ZeroGrad();
  std::vector<float> grads = model.GradsToFlat();
  for (float g : grads) EXPECT_EQ(g, 0.0f);
}

TEST(SequentialTest, SummaryListsLayers) {
  util::Rng rng(15);
  Sequential model;
  model.Add(std::make_unique<Linear>(2, 2, rng));
  model.Add(std::make_unique<Relu>());
  std::string summary = model.Summary();
  EXPECT_NE(summary.find("Linear->Relu"), std::string::npos);
  EXPECT_NE(summary.find("params"), std::string::npos);
}

// ------------------------------------------------------------------- Loss

TEST(CrossEntropyTest, PerfectPredictionLowLoss) {
  Tensor logits = Tensor::FromVector({1, 3}, {10.0f, -10.0f, -10.0f});
  CrossEntropyLoss criterion;
  LossResult result = criterion.Compute(logits, {0});
  EXPECT_LT(result.loss, 1e-3f);
  EXPECT_EQ(result.correct, 1);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogK) {
  Tensor logits = Tensor::Zeros({2, 4});
  CrossEntropyLoss criterion;
  LossResult result = criterion.Compute(logits, {1, 2});
  EXPECT_NEAR(result.loss, std::log(4.0f), 1e-5f);
}

TEST(CrossEntropyTest, GradientIsSoftmaxMinusOneHotOverBatch) {
  Tensor logits = Tensor::Zeros({2, 2});
  CrossEntropyLoss criterion;
  LossResult result = criterion.Compute(logits, {0, 1});
  // softmax = 0.5 each; grad = (0.5 - onehot)/2.
  EXPECT_NEAR(result.grad_logits.at(0, 0), -0.25f, 1e-6f);
  EXPECT_NEAR(result.grad_logits.at(0, 1), 0.25f, 1e-6f);
  EXPECT_NEAR(result.grad_logits.at(1, 1), -0.25f, 1e-6f);
}

TEST(CrossEntropyTest, GradSumsToZeroPerRow) {
  util::Rng rng(16);
  Tensor logits = Tensor::RandomNormal({3, 5}, rng);
  CrossEntropyLoss criterion;
  LossResult result = criterion.Compute(logits, {0, 2, 4});
  for (int r = 0; r < 3; ++r) {
    float row_sum = 0.0f;
    for (int c = 0; c < 5; ++c) row_sum += result.grad_logits.at(r, c);
    EXPECT_NEAR(row_sum, 0.0f, 1e-6f);
  }
}

TEST(SoftCrossEntropyTest, MatchesHardWhenTargetsOneHot) {
  util::Rng rng(17);
  Tensor logits = Tensor::RandomNormal({2, 3}, rng);
  CrossEntropyLoss hard;
  SoftCrossEntropyLoss soft;
  Tensor targets = Tensor::Zeros({2, 3});
  targets.at(0, 1) = 1.0f;
  targets.at(1, 2) = 1.0f;
  LossResult hard_result = hard.Compute(logits, {1, 2});
  LossResult soft_result = soft.Compute(logits, targets);
  EXPECT_NEAR(hard_result.loss, soft_result.loss, 1e-5f);
  for (std::int64_t i = 0; i < hard_result.grad_logits.numel(); ++i) {
    EXPECT_NEAR(hard_result.grad_logits.at(i), soft_result.grad_logits.at(i),
                1e-6f);
  }
}

// --------------------------------------------------------------- Residual

TEST(ResidualBlockTest, IdentitySkipPreservesShape) {
  util::Rng rng(18);
  ResidualBlock block(4, 4, 1, 2, rng);
  Tensor input = Tensor::Zeros({2, 4, 8, 8});
  Tensor output = block.Forward(input, false);
  EXPECT_EQ(output.shape(), input.shape());
}

TEST(ResidualBlockTest, ProjectionChangesShape) {
  util::Rng rng(19);
  ResidualBlock block(4, 8, 2, 2, rng);
  Tensor input = Tensor::Zeros({2, 4, 8, 8});
  Tensor output = block.Forward(input, false);
  EXPECT_EQ(output.shape(), (Tensor::Shape{2, 8, 4, 4}));
}

TEST(ResidualBlockTest, ParamCountIncludesProjection) {
  util::Rng rng(20);
  ResidualBlock identity_block(4, 4, 1, 2, rng);
  ResidualBlock projection_block(4, 8, 2, 2, rng);
  std::vector<Param*> identity_params, projection_params;
  identity_block.CollectParams(identity_params);
  projection_block.CollectParams(projection_params);
  EXPECT_EQ(identity_params.size(), 8u);     // 2x(conv W,b) + 2x(gn g,b)
  EXPECT_EQ(projection_params.size(), 12u);  // + proj conv + proj gn
}

// ----------------------------------------------------------------- Conv2d

TEST(Conv2dTest, IdentityKernelReproducesInput) {
  util::Rng rng(21);
  Conv2d conv(1, 1, 1, 1, 0, rng);
  std::vector<Param*> params;
  conv.CollectParams(params);
  params[0]->value = Tensor::FromVector({1, 1}, {1.0f});
  params[1]->value = Tensor::Zeros({1});
  Tensor input = Tensor::FromVector({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor output = conv.Forward(input, false);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(output.at(i), input.at(i));
  }
}

TEST(Conv2dTest, OutputGeometry) {
  util::Rng rng(22);
  Conv2d conv(3, 5, 3, 2, 1, rng);
  Tensor input = Tensor::Zeros({2, 3, 9, 9});
  Tensor output = conv.Forward(input, false);
  EXPECT_EQ(output.shape(), (Tensor::Shape{2, 5, 5, 5}));
}

TEST(Conv2dTest, BiasBroadcastsOverPlane) {
  util::Rng rng(23);
  Conv2d conv(1, 2, 3, 1, 1, rng);
  std::vector<Param*> params;
  conv.CollectParams(params);
  params[0]->value.Fill(0.0f);
  params[1]->value = Tensor::FromVector({2}, {1.5f, -2.5f});
  Tensor input = Tensor::Zeros({1, 1, 4, 4});
  Tensor output = conv.Forward(input, false);
  EXPECT_FLOAT_EQ(output.at(0), 1.5f);
  EXPECT_FLOAT_EQ(output.at(16), -2.5f);  // second channel plane
}

}  // namespace
}  // namespace fedcross::nn
