#include <gtest/gtest.h>

#include <cmath>

#include "models/model_zoo.h"
#include "nn/loss.h"
#include "util/rng.h"

namespace fedcross::models {
namespace {

TEST(CnnTest, ForwardShape) {
  CnnConfig config;
  config.num_classes = 7;
  nn::Sequential model = MakeCnn(config)();
  util::Rng rng(1);
  Tensor input = Tensor::RandomNormal({2, 3, 16, 16}, rng);
  Tensor logits = model.Forward(input, false);
  EXPECT_EQ(logits.shape(), (Tensor::Shape{2, 7}));
}

TEST(CnnTest, FactoryIsDeterministic) {
  CnnConfig config;
  ModelFactory factory = MakeCnn(config);
  nn::Sequential a = factory();
  nn::Sequential b = factory();
  EXPECT_EQ(a.ParamsToFlat(), b.ParamsToFlat());
}

TEST(CnnTest, DifferentSeedsDifferentWeights) {
  CnnConfig a_config, b_config;
  b_config.seed = 99;
  nn::Sequential a = MakeCnn(a_config)();
  nn::Sequential b = MakeCnn(b_config)();
  EXPECT_NE(a.ParamsToFlat(), b.ParamsToFlat());
}

TEST(ResNetTest, ForwardShape) {
  ResNetConfig config;
  config.num_classes = 5;
  nn::Sequential model = MakeResNet(config)();
  util::Rng rng(2);
  Tensor input = Tensor::RandomNormal({3, 3, 16, 16}, rng);
  Tensor logits = model.Forward(input, false);
  EXPECT_EQ(logits.shape(), (Tensor::Shape{3, 5}));
}

TEST(ResNetTest, DepthScalesWithBlocks) {
  ResNetConfig shallow, deep;
  shallow.blocks_per_stage = 1;
  deep.blocks_per_stage = 3;  // ResNet-20 shape
  nn::Sequential a = MakeResNet(shallow)();
  nn::Sequential b = MakeResNet(deep)();
  EXPECT_GT(b.NumParams(), a.NumParams());
}

TEST(ResNetTest, ResNet20HasThreeStagesOfThree) {
  ResNetConfig config;
  config.blocks_per_stage = 3;
  nn::Sequential model = MakeResNet(config)();
  // stem conv+gn+relu, 9 blocks, pool, linear = 3 + 9 + 2 layers.
  EXPECT_EQ(model.num_layers(), 14);
}

TEST(VggTest, ForwardShape) {
  VggConfig config;
  config.num_classes = 4;
  nn::Sequential model = MakeVgg(config)();
  util::Rng rng(3);
  Tensor input = Tensor::RandomNormal({2, 3, 16, 16}, rng);
  Tensor logits = model.Forward(input, false);
  EXPECT_EQ(logits.shape(), (Tensor::Shape{2, 4}));
}

TEST(VggTest, HasMoreParamsThanCnnAtSameGeometry) {
  // The paper's ordering: VGG is the connection-heavy family.
  VggConfig vgg_config;
  vgg_config.base_width = 16;
  vgg_config.fc_dim = 128;
  CnnConfig cnn_config;
  nn::Sequential vgg = MakeVgg(vgg_config)();
  nn::Sequential cnn = MakeCnn(cnn_config)();
  EXPECT_GT(vgg.NumParams(), cnn.NumParams());
}

TEST(LstmModelTest, ForwardShape) {
  LstmConfig config;
  config.vocab_size = 20;
  config.num_classes = 20;
  nn::Sequential model = MakeLstm(config)();
  Tensor input = Tensor::Zeros({4, 10});
  Tensor logits = model.Forward(input, false);
  EXPECT_EQ(logits.shape(), (Tensor::Shape{4, 20}));
}

TEST(ModelSpecTest, DispatchesAllArchitectures) {
  for (const std::string& arch : {"cnn", "resnet", "vgg", "lstm"}) {
    ModelSpec spec;
    spec.arch = arch;
    spec.num_classes = 6;
    spec.vocab_size = 12;
    auto factory = MakeModelByName(spec);
    ASSERT_TRUE(factory.ok()) << arch;
    nn::Sequential model = factory.value()();
    EXPECT_GT(model.NumParams(), 0) << arch;
  }
}

TEST(ModelSpecTest, RejectsUnknownArch) {
  ModelSpec spec;
  spec.arch = "transformer";
  auto factory = MakeModelByName(spec);
  EXPECT_FALSE(factory.ok());
  EXPECT_EQ(factory.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ModelSpecTest, GeometryIsRespected) {
  ModelSpec spec;
  spec.arch = "cnn";
  spec.in_channels = 1;
  spec.height = 14;
  spec.width = 14;
  spec.num_classes = 62;
  nn::Sequential model = MakeModelByName(spec).value()();
  util::Rng rng(4);
  Tensor input = Tensor::RandomNormal({2, 1, 14, 14}, rng);
  Tensor logits = model.Forward(input, false);
  EXPECT_EQ(logits.shape(), (Tensor::Shape{2, 62}));
}

TEST(ModelZooTest, AllModelsTrainOneStepWithoutNan) {
  // Smoke: one forward/backward pass produces finite gradients everywhere.
  util::Rng rng(5);
  std::vector<std::pair<std::string, nn::Sequential>> zoo;
  zoo.emplace_back("cnn", MakeCnn(CnnConfig())());
  zoo.emplace_back("resnet", MakeResNet(ResNetConfig())());
  zoo.emplace_back("vgg", MakeVgg(VggConfig())());

  for (auto& [name, model] : zoo) {
    Tensor input = Tensor::RandomNormal({2, 3, 16, 16}, rng);
    model.ZeroGrad();
    Tensor logits = model.Forward(input, true);
    nn::CrossEntropyLoss criterion;
    nn::LossResult loss = criterion.Compute(logits, {0, 1});
    model.Backward(loss.grad_logits);
    for (float g : model.GradsToFlat()) {
      ASSERT_TRUE(std::isfinite(g)) << name;
    }
  }
}

}  // namespace
}  // namespace fedcross::models
