// Finite-difference gradient verification for every trainable layer and
// for the full model-zoo architectures. These tests are what make the
// hand-written backprop in src/nn trustworthy.
#include <gtest/gtest.h>

#include <memory>

#include "models/model_zoo.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/flatten.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/norm.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "nn/sequential.h"
#include "test_util.h"

namespace fedcross {
namespace {

using testing::CheckParamGradients;

constexpr double kTol = 0.08;  // float32 central differences are noisy

std::vector<int> CyclicLabels(int batch, int classes) {
  std::vector<int> labels(batch);
  for (int b = 0; b < batch; ++b) labels[b] = b % classes;
  return labels;
}

TEST(GradCheckTest, LinearLayer) {
  util::Rng rng(1);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Linear>(6, 4, rng));
  Tensor input = Tensor::RandomNormal({5, 6}, rng);
  double err = CheckParamGradients(model, input, CyclicLabels(5, 4), rng, 8);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, TwoLinearRelu) {
  util::Rng rng(2);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Linear>(6, 8, rng));
  model.Add(std::make_unique<nn::Relu>());
  model.Add(std::make_unique<nn::Linear>(8, 3, rng));
  Tensor input = Tensor::RandomNormal({4, 6}, rng);
  double err = CheckParamGradients(model, input, CyclicLabels(4, 3), rng, 8);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, TanhAndSigmoid) {
  util::Rng rng(3);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Linear>(5, 5, rng));
  model.Add(std::make_unique<nn::Tanh>());
  model.Add(std::make_unique<nn::Linear>(5, 5, rng));
  model.Add(std::make_unique<nn::Sigmoid>());
  model.Add(std::make_unique<nn::Linear>(5, 2, rng));
  Tensor input = Tensor::RandomNormal({3, 5}, rng);
  double err = CheckParamGradients(model, input, CyclicLabels(3, 2), rng, 8);
  EXPECT_LT(err, kTol);
}

struct ConvCase {
  int in_channels;
  int out_channels;
  int kernel;
  int stride;
  int pad;
};

int ops_out(int in, const ConvCase& c) {
  return (in + 2 * c.pad - c.kernel) / c.stride + 1;
}

class ConvGradCheck : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradCheck, MatchesFiniteDifferences) {
  ConvCase config = GetParam();
  util::Rng rng(4);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Conv2d>(config.in_channels,
                                         config.out_channels, config.kernel,
                                         config.stride, config.pad, rng));
  model.Add(std::make_unique<nn::Flatten>());
  // Classifier head to produce logits.
  int out_h = ops_out(8, config);
  int out_w = out_h;
  model.Add(std::make_unique<nn::Linear>(
      config.out_channels * out_h * out_w, 3, rng));
  Tensor input = Tensor::RandomNormal({2, config.in_channels, 8, 8}, rng);
  double err = CheckParamGradients(model, input, CyclicLabels(2, 3), rng, 6);
  EXPECT_LT(err, kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvGradCheck,
    ::testing::Values(ConvCase{1, 2, 3, 1, 1}, ConvCase{2, 3, 3, 1, 1},
                      ConvCase{2, 4, 3, 2, 1}, ConvCase{1, 2, 5, 1, 2},
                      ConvCase{3, 2, 1, 1, 0}));

TEST(GradCheckTest, MaxPoolPath) {
  util::Rng rng(5);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Conv2d>(1, 2, 3, 1, 1, rng));
  model.Add(std::make_unique<nn::Relu>());
  model.Add(std::make_unique<nn::MaxPool2d>(2, 2));
  model.Add(std::make_unique<nn::Flatten>());
  model.Add(std::make_unique<nn::Linear>(2 * 4 * 4, 2, rng));
  Tensor input = Tensor::RandomNormal({2, 1, 8, 8}, rng);
  double err = CheckParamGradients(model, input, CyclicLabels(2, 2), rng, 6);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, GlobalAvgPoolPath) {
  util::Rng rng(6);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Conv2d>(1, 4, 3, 1, 1, rng));
  model.Add(std::make_unique<nn::GlobalAvgPool>());
  model.Add(std::make_unique<nn::Linear>(4, 3, rng));
  Tensor input = Tensor::RandomNormal({3, 1, 6, 6}, rng);
  double err = CheckParamGradients(model, input, CyclicLabels(3, 3), rng, 6);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, GroupNormPath) {
  util::Rng rng(7);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Conv2d>(2, 4, 3, 1, 1, rng));
  model.Add(std::make_unique<nn::GroupNorm>(4, 2));
  model.Add(std::make_unique<nn::Relu>());
  model.Add(std::make_unique<nn::GlobalAvgPool>());
  model.Add(std::make_unique<nn::Linear>(4, 2, rng));
  Tensor input = Tensor::RandomNormal({2, 2, 6, 6}, rng);
  double err = CheckParamGradients(model, input, CyclicLabels(2, 2), rng, 6);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, ResidualBlockIdentitySkip) {
  util::Rng rng(8);
  nn::Sequential model;
  model.Add(std::make_unique<nn::ResidualBlock>(4, 4, /*stride=*/1,
                                                /*gn_groups=*/2, rng));
  model.Add(std::make_unique<nn::GlobalAvgPool>());
  model.Add(std::make_unique<nn::Linear>(4, 2, rng));
  Tensor input = Tensor::RandomNormal({2, 4, 6, 6}, rng);
  double err = CheckParamGradients(model, input, CyclicLabels(2, 2), rng, 4);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, ResidualBlockProjectionSkip) {
  util::Rng rng(9);
  nn::Sequential model;
  model.Add(std::make_unique<nn::ResidualBlock>(2, 4, /*stride=*/2,
                                                /*gn_groups=*/2, rng));
  model.Add(std::make_unique<nn::GlobalAvgPool>());
  model.Add(std::make_unique<nn::Linear>(4, 2, rng));
  Tensor input = Tensor::RandomNormal({2, 2, 8, 8}, rng);
  double err = CheckParamGradients(model, input, CyclicLabels(2, 2), rng, 4);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, EmbeddingLstmClassifier) {
  util::Rng rng(10);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Embedding>(7, 5, rng));
  model.Add(std::make_unique<nn::Lstm>(5, 6, rng));
  model.Add(std::make_unique<nn::Linear>(6, 4, rng));
  Tensor input = Tensor::FromVector({2, 5}, {0, 1, 2, 3, 4, 6, 5, 4, 3, 2});
  double err = CheckParamGradients(model, input, CyclicLabels(2, 4), rng, 6);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, LstmOnContinuousInput) {
  util::Rng rng(11);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Lstm>(3, 4, rng));
  model.Add(std::make_unique<nn::Linear>(4, 2, rng));
  Tensor input = Tensor::RandomNormal({3, 6, 3}, rng);
  double err = CheckParamGradients(model, input, CyclicLabels(3, 2), rng, 8);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, InputGradientOfLinearModel) {
  // Verify Sequential::Backward's returned input gradient too.
  util::Rng rng(12);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Linear>(4, 3, rng));
  Tensor input = Tensor::RandomNormal({2, 4}, rng);
  std::vector<int> labels = CyclicLabels(2, 3);
  nn::CrossEntropyLoss criterion;

  model.ZeroGrad();
  Tensor logits = model.Forward(input, false);
  nn::LossResult loss = criterion.Compute(logits, labels);
  Tensor grad_input = model.Backward(loss.grad_logits);
  ASSERT_TRUE(grad_input.SameShape(input));

  const float eps = 1e-2f;
  for (int trial = 0; trial < 6; ++trial) {
    std::int64_t index = rng.UniformInt(input.numel());
    Tensor plus = input;
    plus.at(index) += eps;
    Tensor minus = input;
    minus.at(index) -= eps;
    float loss_plus = criterion.Compute(model.Forward(plus, false), labels,
                                        false).loss;
    float loss_minus = criterion.Compute(model.Forward(minus, false), labels,
                                         false).loss;
    double numeric = (loss_plus - loss_minus) / (2.0 * eps);
    EXPECT_NEAR(grad_input.at(index), numeric, 0.02)
        << "input coordinate " << index;
  }
}

// Full model-zoo architectures (small geometries).
TEST(GradCheckTest, ZooCnn) {
  models::CnnConfig config;
  config.height = config.width = 8;
  config.conv1_channels = 4;
  config.conv2_channels = 6;
  config.fc_dim = 10;
  config.num_classes = 4;
  nn::Sequential model = models::MakeCnn(config)();
  util::Rng rng(13);
  Tensor input = Tensor::RandomNormal({2, 3, 8, 8}, rng);
  double err = CheckParamGradients(model, input, CyclicLabels(2, 4), rng, 3);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, ZooResNet) {
  models::ResNetConfig config;
  config.height = config.width = 8;
  config.base_width = 4;
  config.gn_groups = 2;
  config.num_classes = 3;
  nn::Sequential model = models::MakeResNet(config)();
  util::Rng rng(14);
  Tensor input = Tensor::RandomNormal({2, 3, 8, 8}, rng);
  double err = CheckParamGradients(model, input, CyclicLabels(2, 3), rng, 2);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, ZooVgg) {
  models::VggConfig config;
  config.height = config.width = 8;
  config.base_width = 4;
  config.fc_dim = 8;
  config.num_classes = 3;
  nn::Sequential model = models::MakeVgg(config)();
  util::Rng rng(15);
  Tensor input = Tensor::RandomNormal({2, 3, 8, 8}, rng);
  double err = CheckParamGradients(model, input, CyclicLabels(2, 3), rng, 2);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, ZooLstm) {
  models::LstmConfig config;
  config.vocab_size = 9;
  config.embed_dim = 5;
  config.hidden_dim = 7;
  config.num_classes = 9;
  nn::Sequential model = models::MakeLstm(config)();
  util::Rng rng(16);
  std::vector<float> ids(2 * 6);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<float>(i % 9);
  }
  Tensor input = Tensor::FromVector({2, 6}, std::move(ids));
  double err = CheckParamGradients(model, input, CyclicLabels(2, 9), rng, 4);
  EXPECT_LT(err, kTol);
}

}  // namespace
}  // namespace fedcross
