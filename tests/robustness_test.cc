// Fault injection, upload screening, robust aggregation, and checkpoint
// resume. The invariants under test:
//   * fault draws live on their own RNG stream, so a profile that never
//     fires is bit-identical to no profile at all, and one client's fault
//     cannot perturb the survivors;
//   * screening rejects mangled uploads in every algorithm, degrading them
//     exactly like dropouts (the global model stays finite);
//   * the robust aggregators match hand-computed values;
//   * save -> kill -> load -> resume is bit-identical to an uninterrupted
//     run for all six algorithms.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "comm/wire.h"
#include "core/fedcross.h"
#include "fl/aggregators.h"
#include "fl/algorithm.h"
#include "fl/checkpoint.h"
#include "fl/clusamp.h"
#include "fl/faults.h"
#include "fl/fedavg.h"
#include "fl/fedcluster.h"
#include "fl/fedgen.h"
#include "fl/scaffold.h"
#include "nn/linear.h"

namespace fedcross::fl {
namespace {

models::ModelFactory LinearFactory(int dim, std::uint64_t seed = 1) {
  return [dim, seed]() {
    util::Rng rng(seed);
    nn::Sequential model;
    model.Add(std::make_unique<nn::Linear>(dim, 2, rng));
    return model;
  };
}

data::FederatedDataset MakeToyFederated(int num_clients, int per_client,
                                        int dim, std::uint64_t seed) {
  util::Rng rng(seed);
  data::FederatedDataset federated;
  federated.num_classes = 2;
  auto gen_example = [&](int k, std::vector<float>& features) {
    float mean = k == 0 ? -1.0f : 1.0f;
    for (int d = 0; d < dim; ++d) {
      features.push_back(mean + static_cast<float>(rng.Normal(0.0, 0.6)));
    }
  };
  for (int c = 0; c < num_clients; ++c) {
    std::vector<float> features;
    std::vector<int> labels;
    for (int i = 0; i < per_client; ++i) {
      int k = rng.Uniform() < 0.9 ? c % 2 : 1 - c % 2;
      gen_example(k, features);
      labels.push_back(k);
    }
    federated.client_train.push_back(std::make_shared<data::InMemoryDataset>(
        Tensor::Shape{dim}, std::move(features), std::move(labels), 2));
  }
  std::vector<float> features;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    gen_example(i % 2, features);
    labels.push_back(i % 2);
  }
  federated.test = std::make_shared<data::InMemoryDataset>(
      Tensor::Shape{dim}, std::move(features), std::move(labels), 2);
  return federated;
}

AlgorithmConfig ToyConfig() {
  AlgorithmConfig config;
  config.clients_per_round = 4;
  config.train.local_epochs = 1;
  config.train.batch_size = 10;
  config.train.lr = 0.05f;
  config.seed = 17;
  return config;
}

std::unique_ptr<FlAlgorithm> MakeAlgorithm(const std::string& name,
                                           AlgorithmConfig config) {
  data::FederatedDataset data = MakeToyFederated(8, 40, 4, 41);
  models::ModelFactory factory = LinearFactory(4);
  if (name == "FedAvg") {
    return std::make_unique<FedAvg>(config, std::move(data),
                                    std::move(factory));
  }
  if (name == "FedProx") {
    return std::make_unique<FedProx>(config, std::move(data),
                                     std::move(factory), 0.1f);
  }
  if (name == "SCAFFOLD") {
    return std::make_unique<Scaffold>(config, std::move(data),
                                      std::move(factory));
  }
  if (name == "FedGen") {
    return std::make_unique<FedGen>(config, std::move(data),
                                    std::move(factory));
  }
  if (name == "CluSamp") {
    return std::make_unique<CluSamp>(config, std::move(data),
                                     std::move(factory));
  }
  if (name == "FedCluster") {
    return std::make_unique<FedCluster>(config, std::move(data),
                                        std::move(factory), /*num_clusters=*/2);
  }
  if (name == "FedCross") {
    core::FedCrossOptions options;
    options.alpha = 0.9;
    return std::make_unique<core::FedCross>(config, std::move(data),
                                            std::move(factory), options);
  }
  ADD_FAILURE() << "unknown algorithm " << name;
  return nullptr;
}

const char* kAllAlgorithms[] = {"FedAvg",  "FedProx",    "SCAFFOLD", "FedGen",
                                "CluSamp", "FedCluster", "FedCross"};

void ExpectBitIdentical(const FlatParams& a, const FlatParams& b) {
  ASSERT_EQ(a.size(), b.size());
  if (a.empty()) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

bool AllFinite(const FlatParams& params) {
  for (float x : params) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

// Minimal concrete FlAlgorithm exposing the protected training fan-out, so
// tests can inspect per-slot results directly.
class ProbeAlgorithm : public FlAlgorithm {
 public:
  ProbeAlgorithm(AlgorithmConfig config, data::FederatedDataset data,
                 models::ModelFactory factory)
      : FlAlgorithm("Probe", config, std::move(data), std::move(factory)) {}

  void RunRound(int round) override { (void)round; }
  FlatParams GlobalParams() override { return InitialParams(); }

  using FlAlgorithm::ClientJob;
  using FlAlgorithm::InitialParams;
  using FlAlgorithm::TrainClients;
};

// --------------------------------------------------------------------------
// Fault stream and fault model
// --------------------------------------------------------------------------

TEST(FaultStreamTest, SeedIsDeterministicAndArgumentSensitive) {
  std::uint64_t base = FaultSeed(17, 3, 0, 2);
  EXPECT_EQ(base, FaultSeed(17, 3, 0, 2));
  EXPECT_NE(base, FaultSeed(18, 3, 0, 2));
  EXPECT_NE(base, FaultSeed(17, 4, 0, 2));
  EXPECT_NE(base, FaultSeed(17, 3, 1, 2));
  EXPECT_NE(base, FaultSeed(17, 3, 0, 3));
}

TEST(FaultStreamTest, InactiveProfileDrawsNothing) {
  // A profile with all probabilities at zero must not consume a single
  // draw, so the stream state is untouched.
  FaultProfile profile;
  util::Rng rng(99);
  util::Rng untouched(99);
  FaultDecision decision = DrawFaults(profile, /*round_deadline=*/5.0, rng);
  EXPECT_FALSE(decision.dropped);
  EXPECT_FALSE(decision.timed_out);
  EXPECT_FALSE(decision.corrupt);
  EXPECT_EQ(rng.Uniform(), untouched.Uniform());
}

TEST(FaultStreamTest, NeverFiringProfileIsBitIdenticalToDisabled) {
  // straggler_prob > 0 with no deadline consumes fault-stream draws but can
  // never change an outcome. Because those draws come from the dedicated
  // stream, the run must be bit-identical to one with faults disabled: the
  // training stream never observes them.
  AlgorithmConfig clean = ToyConfig();
  FedAvg a(clean, MakeToyFederated(8, 40, 4, 41), LinearFactory(4));
  for (int r = 0; r < 3; ++r) a.RunRound(r);

  AlgorithmConfig harmless = ToyConfig();
  harmless.faults.profile.straggler_prob = 0.5;
  harmless.faults.round_deadline = 0.0;  // deadline off: stragglers finish
  FedAvg b(harmless, MakeToyFederated(8, 40, 4, 41), LinearFactory(4));
  for (int r = 0; r < 3; ++r) b.RunRound(r);

  ExpectBitIdentical(a.GlobalParams(), b.GlobalParams());
  EXPECT_EQ(b.fault_stats().dropouts, 0);
  EXPECT_EQ(b.fault_stats().stragglers, 0);
}

TEST(FaultStreamTest, OneClientsDropoutDoesNotPerturbSurvivors) {
  auto make_jobs = [](ProbeAlgorithm& probe,
                      std::vector<ProbeAlgorithm::ClientJob>& jobs,
                      const ClientTrainSpec& spec) {
    jobs.resize(4);
    for (int i = 0; i < 4; ++i) {
      jobs[i] = {i, &probe.InitialParams(), &spec};
    }
  };

  ClientTrainSpec spec;
  spec.options = ToyConfig().train;

  ProbeAlgorithm clean(ToyConfig(), MakeToyFederated(8, 40, 4, 41),
                       LinearFactory(4));
  std::vector<ProbeAlgorithm::ClientJob> jobs;
  make_jobs(clean, jobs, spec);
  std::vector<FlatParams> baseline;
  for (const LocalTrainResult& r : clean.TrainClients(0, 0, jobs)) {
    baseline.push_back(r.params);
  }

  AlgorithmConfig faulty = ToyConfig();
  faulty.faults.overrides[1].dropout_prob = 1.0;  // only client 1 fails
  ProbeAlgorithm probe(faulty, MakeToyFederated(8, 40, 4, 41),
                       LinearFactory(4));
  make_jobs(probe, jobs, spec);
  const std::vector<LocalTrainResult>& results = probe.TrainClients(0, 0, jobs);

  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[1].dropped);
  EXPECT_EQ(results[1].fault, FaultKind::kDropout);
  // The dropped slot echoes the dispatched model.
  ExpectBitIdentical(results[1].params, probe.InitialParams());
  // Every surviving client trained exactly as in the clean run.
  for (int i : {0, 2, 3}) {
    EXPECT_FALSE(results[i].dropped);
    ExpectBitIdentical(results[i].params, baseline[i]);
  }
}

TEST(FaultModelTest, StragglersMissTheDeadline) {
  AlgorithmConfig config = ToyConfig();
  config.faults.profile.straggler_prob = 1.0;
  config.faults.profile.slowdown_min = 10.0;
  config.faults.profile.slowdown_max = 10.0;
  config.faults.round_deadline = 5.0;
  FedAvg fedavg(config, MakeToyFederated(8, 40, 4, 41), LinearFactory(4));
  FlatParams before = fedavg.GlobalParams();
  fedavg.RunRound(0);
  // Every client timed out, so the round aggregated nothing.
  EXPECT_EQ(fedavg.fault_stats().stragglers, 4);
  ExpectBitIdentical(fedavg.GlobalParams(), before);
}

TEST(FaultModelTest, OverProvisionDispatchesExtraClients) {
  AlgorithmConfig config = ToyConfig();
  config.faults.over_provision = 2;
  FedAvg fedavg(config, MakeToyFederated(8, 40, 4, 41), LinearFactory(4));
  fedavg.RunRound(0);
  double per_model = CommTracker::FloatBytes(fedavg.model_size());
  // K + over_provision = 6 dispatches (and, fault-free, 6 uploads).
  EXPECT_EQ(fedavg.comm().total_download_bytes(), 6 * per_model);
  EXPECT_EQ(fedavg.comm().total_upload_bytes(), 6 * per_model);
}

TEST(FaultModelTest, ParseRoundTrips) {
  for (CorruptionKind kind :
       {CorruptionKind::kNanInject, CorruptionKind::kInfInject,
        CorruptionKind::kExplodingNorm, CorruptionKind::kSignFlip}) {
    util::StatusOr<CorruptionKind> parsed =
        ParseCorruptionKind(CorruptionKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(ParseCorruptionKind("gamma-ray").ok());

  for (AggregatorKind kind :
       {AggregatorKind::kWeightedMean, AggregatorKind::kTrimmedMean,
        AggregatorKind::kCoordinateMedian, AggregatorKind::kNormClippedMean}) {
    util::StatusOr<AggregatorKind> parsed =
        ParseAggregatorKind(AggregatorKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(ParseAggregatorKind("krum").ok());
}

// --------------------------------------------------------------------------
// Corruption and screening
// --------------------------------------------------------------------------

TEST(ScreeningTest, CorruptUploadMatchesItsDefinition) {
  FaultProfile profile;
  profile.corruption = CorruptionKind::kSignFlip;
  profile.corruption_scale = 2.0f;
  FlatParams reference = {1.0f, -1.0f, 0.5f};
  FlatParams params = {2.0f, 0.0f, 0.5f};
  util::Rng rng(7);
  CorruptUpload(profile, reference, params, rng);
  // ref - scale * (p - ref)
  EXPECT_FLOAT_EQ(params[0], 1.0f - 2.0f * 1.0f);
  EXPECT_FLOAT_EQ(params[1], -1.0f - 2.0f * 1.0f);
  EXPECT_FLOAT_EQ(params[2], 0.5f);

  profile.corruption = CorruptionKind::kExplodingNorm;
  params = {2.0f, 0.0f, 0.5f};
  CorruptUpload(profile, reference, params, rng);
  EXPECT_FLOAT_EQ(params[0], 1.0f + 2.0f * 1.0f);
  EXPECT_FLOAT_EQ(params[1], -1.0f + 2.0f * 1.0f);
  EXPECT_FLOAT_EQ(params[2], 0.5f);

  profile.corruption = CorruptionKind::kNanInject;
  profile.corrupt_coords = 2;
  params = {2.0f, 0.0f, 0.5f};
  CorruptUpload(profile, reference, params, rng);
  EXPECT_FALSE(AllFinite(params));
}

TEST(ScreeningTest, GateCatchesNonFiniteAndExplodingUploads) {
  ScreeningOptions options;
  options.check_finite = true;
  options.max_update_norm = 5.0f;
  FlatParams reference = {0.0f, 0.0f};

  EXPECT_TRUE(ScreenUpload(reference, {1.0f, 1.0f}, options).ok());

  util::Status nan_verdict = ScreenUpload(
      reference, {std::nanf(""), 1.0f}, options);
  EXPECT_EQ(nan_verdict.code(), util::StatusCode::kInvalidArgument);

  util::Status big_verdict = ScreenUpload(reference, {30.0f, 40.0f}, options);
  EXPECT_EQ(big_verdict.code(), util::StatusCode::kOutOfRange);

  util::Status size_verdict = ScreenUpload(reference, {1.0f}, options);
  EXPECT_EQ(size_verdict.code(), util::StatusCode::kInvalidArgument);

  // The norm gate alone must also stop NaN uploads (NaN fails any
  // comparison, so the gate uses !(norm <= gate)).
  ScreeningOptions norm_only;
  norm_only.max_update_norm = 5.0f;
  EXPECT_FALSE(ScreenUpload(reference, {std::nanf(""), 1.0f}, norm_only).ok());
}

TEST(ScreeningTest, WithoutScreeningNanUploadsPoisonTheGlobalModel) {
  AlgorithmConfig config = ToyConfig();
  config.faults.profile.corrupt_prob = 1.0;
  config.faults.profile.corruption = CorruptionKind::kNanInject;
  FedAvg fedavg(config, MakeToyFederated(8, 40, 4, 41), LinearFactory(4));
  fedavg.RunRound(0);
  EXPECT_FALSE(AllFinite(fedavg.GlobalParams()));
}

TEST(ScreeningTest, EveryAlgorithmRejectsNanUploads) {
  for (const char* name : kAllAlgorithms) {
    AlgorithmConfig config = ToyConfig();
    config.faults.profile.corrupt_prob = 1.0;
    config.faults.profile.corruption = CorruptionKind::kNanInject;
    config.screening.check_finite = true;
    std::unique_ptr<FlAlgorithm> algo = MakeAlgorithm(name, config);
    for (int r = 0; r < 2; ++r) algo->RunRound(r);
    EXPECT_GT(algo->fault_stats().rejected, 0) << name;
    EXPECT_EQ(algo->fault_stats().corrupted, algo->fault_stats().rejected)
        << name;
    EXPECT_TRUE(AllFinite(algo->GlobalParams())) << name;
  }
}

TEST(ScreeningTest, EveryAlgorithmRejectsExplodingUploads) {
  for (const char* name : kAllAlgorithms) {
    AlgorithmConfig config = ToyConfig();
    config.faults.profile.corrupt_prob = 1.0;
    config.faults.profile.corruption = CorruptionKind::kExplodingNorm;
    config.faults.profile.corruption_scale = 1e6f;
    config.screening.max_update_norm = 10.0f;
    std::unique_ptr<FlAlgorithm> algo = MakeAlgorithm(name, config);
    for (int r = 0; r < 2; ++r) algo->RunRound(r);
    EXPECT_GT(algo->fault_stats().rejected, 0) << name;
    EXPECT_TRUE(AllFinite(algo->GlobalParams())) << name;
  }
}

// --------------------------------------------------------------------------
// Robust aggregators
// --------------------------------------------------------------------------

TEST(AggregatorTest, TrimmedMeanDropsTheTails) {
  FlatParams a = {1.0f, -100.0f};
  FlatParams b = {2.0f, 1.0f};
  FlatParams c = {3.0f, 2.0f};
  FlatParams d = {100.0f, 3.0f};
  std::vector<const FlatParams*> models = {&a, &b, &c, &d};
  FlatParams column;
  FlatParams out;
  TrimmedMeanInto(models, /*trim_ratio=*/0.25, column, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FLOAT_EQ(out[0], 2.5f);  // mean of {2, 3}
  EXPECT_FLOAT_EQ(out[1], 1.5f);  // mean of {1, 2}
}

TEST(AggregatorTest, TrimmedMeanKeepsAtLeastOneValue) {
  // n = 2 with trim_ratio 0.4 would trim 0 from each side (floor(0.8) = 0);
  // n = 3 with 0.45 trims one, leaving the median.
  FlatParams a = {0.0f};
  FlatParams b = {10.0f};
  FlatParams c = {1.0f};
  std::vector<const FlatParams*> models = {&a, &b, &c};
  FlatParams column;
  FlatParams out;
  TrimmedMeanInto(models, /*trim_ratio=*/0.45, column, out);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
}

TEST(AggregatorTest, CoordinateMedianOddAndEven) {
  FlatParams a = {1.0f, 4.0f};
  FlatParams b = {5.0f, 1.0f};
  FlatParams c = {100.0f, 2.0f};
  std::vector<const FlatParams*> odd = {&a, &b, &c};
  FlatParams column;
  FlatParams out;
  CoordinateMedianInto(odd, column, out);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f);

  FlatParams d = {2.0f, 3.0f};
  std::vector<const FlatParams*> even = {&a, &b, &c, &d};
  CoordinateMedianInto(even, column, out);
  EXPECT_FLOAT_EQ(out[0], 3.5f);  // mean of {2, 5}
  EXPECT_FLOAT_EQ(out[1], 2.5f);  // mean of {2, 3}
}

TEST(AggregatorTest, NormClippedMeanClipsLargeUpdates) {
  FlatParams reference = {0.0f, 0.0f};
  FlatParams small = {3.0f, 4.0f};   // norm 5: untouched
  FlatParams large = {6.0f, 8.0f};   // norm 10: clipped to {3, 4}
  std::vector<const FlatParams*> models = {&small, &large};
  std::vector<double> weights = {1.0, 1.0};
  FlatParams scratch;
  FlatParams out;
  NormClippedWeightedAverageInto(models, weights, reference, /*clip_norm=*/5.0f,
                                 scratch, out);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
  EXPECT_FLOAT_EQ(out[1], 4.0f);
}

TEST(AggregatorTest, NormClippedMeanIsAliasSafe) {
  FlatParams reference = {1.0f, 2.0f};
  FlatParams m = {2.0f, 2.0f};
  std::vector<const FlatParams*> models = {&m};
  std::vector<double> weights = {1.0};
  FlatParams scratch;
  // out aliases reference: the clipping centre must be read before the
  // output is written.
  NormClippedWeightedAverageInto(models, weights, reference, /*clip_norm=*/5.0f,
                                 scratch, reference);
  EXPECT_FLOAT_EQ(reference[0], 2.0f);
  EXPECT_FLOAT_EQ(reference[1], 2.0f);
}

TEST(AggregatorTest, ByzantineClientCannotMoveTheMedian) {
  // One sign-flipping client among four under the coordinate median: the
  // model stays finite and close to the honest aggregate.
  AlgorithmConfig config = ToyConfig();
  config.faults.overrides[0].corrupt_prob = 1.0;
  config.faults.overrides[0].corruption = CorruptionKind::kSignFlip;
  config.faults.overrides[0].corruption_scale = 1e4f;
  config.aggregator.kind = AggregatorKind::kCoordinateMedian;
  FedAvg fedavg(config, MakeToyFederated(8, 40, 4, 41), LinearFactory(4));
  for (int r = 0; r < 3; ++r) fedavg.RunRound(r);
  FlatParams params = fedavg.GlobalParams();
  ASSERT_TRUE(AllFinite(params));
  for (float x : params) EXPECT_LT(std::fabs(x), 100.0f);
}

// --------------------------------------------------------------------------
// Checkpoint serialisation primitives
// --------------------------------------------------------------------------

TEST(StateSerializationTest, PrimitivesRoundTrip) {
  StateWriter writer;
  writer.WriteU32(0xdeadbeefu);
  writer.WriteU64(0x0123456789abcdefULL);
  writer.WriteI64(-42);
  writer.WriteF32(1.5f);
  writer.WriteF64(-2.25);
  writer.WriteBool(true);
  writer.WriteFloats({1.0f, -2.0f, 3.0f});
  writer.WriteInts({-1, 0, 7});
  writer.WriteDoubles({0.5, -0.25});

  StateReader reader(writer.bytes());
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  float f32 = 0.0f;
  double f64 = 0.0;
  bool flag = false;
  FlatParams floats;
  std::vector<int> ints;
  std::vector<double> doubles;
  ASSERT_TRUE(reader.ReadU32(u32).ok());
  ASSERT_TRUE(reader.ReadU64(u64).ok());
  ASSERT_TRUE(reader.ReadI64(i64).ok());
  ASSERT_TRUE(reader.ReadF32(f32).ok());
  ASSERT_TRUE(reader.ReadF64(f64).ok());
  ASSERT_TRUE(reader.ReadBool(flag).ok());
  ASSERT_TRUE(reader.ReadFloats(floats).ok());
  ASSERT_TRUE(reader.ReadInts(ints).ok());
  ASSERT_TRUE(reader.ReadDoubles(doubles).ok());
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_TRUE(flag);
  EXPECT_EQ(floats, FlatParams({1.0f, -2.0f, 3.0f}));
  EXPECT_EQ(ints, std::vector<int>({-1, 0, 7}));
  EXPECT_EQ(doubles, std::vector<double>({0.5, -0.25}));
  EXPECT_TRUE(reader.AtEnd());
  // Reading past the end is a clean error, not UB.
  EXPECT_EQ(reader.ReadU32(u32).code(), util::StatusCode::kInvalidArgument);
}

TEST(StateSerializationTest, CorruptLengthPrefixIsRejected) {
  StateWriter writer;
  writer.WriteU64(~0ULL);  // a float vector claiming 2^64-1 elements
  StateReader reader(writer.bytes());
  FlatParams floats;
  EXPECT_EQ(reader.ReadFloats(floats).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(StateSerializationTest, StateFileRoundTripAndValidation) {
  const std::string path = "robustness_state_file_test.bin";
  StateWriter writer;
  writer.WriteU64(1234);
  ASSERT_TRUE(WriteStateFile(path, writer).ok());

  util::StatusOr<StateReader> reader = ReadStateFile(path);
  ASSERT_TRUE(reader.ok());
  std::uint64_t value = 0;
  ASSERT_TRUE(reader.value().ReadU64(value).ok());
  EXPECT_EQ(value, 1234u);

  EXPECT_EQ(ReadStateFile("no_such_checkpoint.bin").status().code(),
            util::StatusCode::kNotFound);

  {
    std::ofstream garbage(path, std::ios::binary | std::ios::trunc);
    garbage << "not a checkpoint";
  }
  EXPECT_EQ(ReadStateFile(path).status().code(),
            util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// Full checkpoint / resume
// --------------------------------------------------------------------------

void ExpectSameHistory(const MetricsHistory& a, const MetricsHistory& b) {
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    const RoundRecord& x = a.records()[i];
    const RoundRecord& y = b.records()[i];
    EXPECT_EQ(x.round, y.round);
    EXPECT_EQ(x.test_loss, y.test_loss);
    EXPECT_EQ(x.test_accuracy, y.test_accuracy);
    EXPECT_EQ(x.bytes_up, y.bytes_up);
    EXPECT_EQ(x.bytes_down, y.bytes_down);
    EXPECT_EQ(x.mean_client_loss, y.mean_client_loss);
  }
}

TEST(CheckpointTest, ResumeIsBitIdenticalForEveryAlgorithm) {
  for (const char* name : kAllAlgorithms) {
    SCOPED_TRACE(name);
    const std::string path =
        std::string("robustness_ckpt_") + name + ".bin";
    AlgorithmConfig config = ToyConfig();

    // Uninterrupted reference run.
    std::unique_ptr<FlAlgorithm> full = MakeAlgorithm(name, config);
    full->Run(5, /*eval_every=*/1);

    // Run 3 rounds, checkpoint, "kill" the process (drop the instance).
    {
      std::unique_ptr<FlAlgorithm> first = MakeAlgorithm(name, config);
      first->Run(3, /*eval_every=*/1);
      ASSERT_TRUE(first->SaveCheckpoint(path).ok());
    }

    // Restore into a fresh instance and finish the run.
    std::unique_ptr<FlAlgorithm> resumed = MakeAlgorithm(name, config);
    ASSERT_TRUE(resumed->LoadCheckpoint(path).ok());
    EXPECT_EQ(resumed->completed_rounds(), 3);
    resumed->Run(5, /*eval_every=*/1);

    EXPECT_EQ(resumed->completed_rounds(), 5);
    ExpectBitIdentical(full->GlobalParams(), resumed->GlobalParams());
    ExpectSameHistory(full->history(), resumed->history());
    EXPECT_EQ(full->comm().total_upload_bytes(),
              resumed->comm().total_upload_bytes());
    EXPECT_EQ(full->comm().total_download_bytes(),
              resumed->comm().total_download_bytes());
    std::remove(path.c_str());
  }
}

TEST(CheckpointTest, ResumeUnderFaultsIsBitIdentical) {
  // Checkpointing must also capture the fault accounting mid-run.
  const std::string path = "robustness_ckpt_faulty.bin";
  AlgorithmConfig config = ToyConfig();
  config.faults.profile.dropout_prob = 0.2;
  config.faults.profile.corrupt_prob = 0.3;
  config.faults.profile.corruption = CorruptionKind::kExplodingNorm;
  config.screening.max_update_norm = 25.0f;
  config.aggregator.kind = AggregatorKind::kNormClippedMean;
  config.aggregator.clip_norm = 5.0f;

  std::unique_ptr<FlAlgorithm> full = MakeAlgorithm("FedAvg", config);
  full->Run(6, /*eval_every=*/1);

  {
    std::unique_ptr<FlAlgorithm> first = MakeAlgorithm("FedAvg", config);
    first->Run(2, /*eval_every=*/1);
    ASSERT_TRUE(first->SaveCheckpoint(path).ok());
  }
  std::unique_ptr<FlAlgorithm> resumed = MakeAlgorithm("FedAvg", config);
  ASSERT_TRUE(resumed->LoadCheckpoint(path).ok());
  resumed->Run(6, /*eval_every=*/1);

  ExpectBitIdentical(full->GlobalParams(), resumed->GlobalParams());
  ExpectSameHistory(full->history(), resumed->history());
  EXPECT_EQ(full->fault_stats().dropouts, resumed->fault_stats().dropouts);
  EXPECT_EQ(full->fault_stats().corrupted, resumed->fault_stats().corrupted);
  EXPECT_EQ(full->fault_stats().rejected, resumed->fault_stats().rejected);
  std::remove(path.c_str());
}

TEST(CheckpointTest, AutoCheckpointSavesDuringRun) {
  const std::string path = "robustness_ckpt_auto.bin";
  {
    std::unique_ptr<FlAlgorithm> algo = MakeAlgorithm("FedAvg", ToyConfig());
    algo->EnableAutoCheckpoint(path, /*every_rounds=*/2);
    algo->Run(5, /*eval_every=*/1);
  }
  std::unique_ptr<FlAlgorithm> restored = MakeAlgorithm("FedAvg", ToyConfig());
  ASSERT_TRUE(restored->LoadCheckpoint(path).ok());
  // The final round always checkpoints, even off the every_rounds grid.
  EXPECT_EQ(restored->completed_rounds(), 5);
  // Resuming a finished run is a no-op.
  std::size_t records = restored->history().records().size();
  restored->Run(5, /*eval_every=*/1);
  EXPECT_EQ(restored->history().records().size(), records);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MismatchedConfigurationIsRejected) {
  const std::string path = "robustness_ckpt_mismatch.bin";
  {
    std::unique_ptr<FlAlgorithm> algo = MakeAlgorithm("FedAvg", ToyConfig());
    algo->Run(2, /*eval_every=*/1);
    ASSERT_TRUE(algo->SaveCheckpoint(path).ok());
  }
  // Different seed.
  AlgorithmConfig other_seed = ToyConfig();
  other_seed.seed = 18;
  std::unique_ptr<FlAlgorithm> wrong_seed = MakeAlgorithm("FedAvg", other_seed);
  EXPECT_EQ(wrong_seed->LoadCheckpoint(path).code(),
            util::StatusCode::kFailedPrecondition);
  // Different algorithm.
  std::unique_ptr<FlAlgorithm> wrong_algo =
      MakeAlgorithm("SCAFFOLD", ToyConfig());
  EXPECT_EQ(wrong_algo->LoadCheckpoint(path).code(),
            util::StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncatedCheckpointIsRejected) {
  const std::string path = "robustness_ckpt_truncated.bin";
  {
    std::unique_ptr<FlAlgorithm> algo = MakeAlgorithm("FedAvg", ToyConfig());
    algo->Run(2, /*eval_every=*/1);
    ASSERT_TRUE(algo->SaveCheckpoint(path).ok());
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(in.good());
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<char> bytes(static_cast<std::size_t>(size) / 2);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::unique_ptr<FlAlgorithm> algo = MakeAlgorithm("FedAvg", ToyConfig());
  EXPECT_EQ(algo->LoadCheckpoint(path).code(),
            util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  std::unique_ptr<FlAlgorithm> algo = MakeAlgorithm("FedAvg", ToyConfig());
  EXPECT_EQ(algo->LoadCheckpoint("definitely_missing.bin").code(),
            util::StatusCode::kNotFound);
}

TEST(CheckpointTest, ResumeUnderLossyCodecIsBitIdentical) {
  // The v2 checkpoint carries the per-client error-feedback residuals: a
  // resumed int8_topk run must re-quantise against the same residual state
  // the killed run held, or it diverges from the uninterrupted one.
  const std::string path = "robustness_ckpt_codec.bin";
  AlgorithmConfig config = ToyConfig();
  config.codec.scheme = comm::Scheme::kInt8TopK;
  config.codec.topk_fraction = 0.25;

  std::unique_ptr<FlAlgorithm> full = MakeAlgorithm("FedCross", config);
  full->Run(6, /*eval_every=*/1);

  {
    std::unique_ptr<FlAlgorithm> first = MakeAlgorithm("FedCross", config);
    first->Run(3, /*eval_every=*/1);
    ASSERT_TRUE(first->SaveCheckpoint(path).ok());
  }
  std::unique_ptr<FlAlgorithm> resumed = MakeAlgorithm("FedCross", config);
  ASSERT_TRUE(resumed->LoadCheckpoint(path).ok());
  resumed->Run(6, /*eval_every=*/1);

  ExpectBitIdentical(full->GlobalParams(), resumed->GlobalParams());
  ExpectSameHistory(full->history(), resumed->history());
  EXPECT_EQ(full->comm().total_wire_upload_bytes(),
            resumed->comm().total_wire_upload_bytes());
  std::remove(path.c_str());
}

TEST(CheckpointTest, CodecConfigPerturbsTheFingerprint) {
  // A checkpoint from a lossy-codec run must not resume into an uncoded
  // configuration (or vice versa): the residual state only makes sense
  // under the codec that produced it.
  const std::string path = "robustness_ckpt_codec_fp.bin";
  AlgorithmConfig coded = ToyConfig();
  coded.codec.scheme = comm::Scheme::kInt8;
  {
    std::unique_ptr<FlAlgorithm> algo = MakeAlgorithm("FedAvg", coded);
    algo->Run(1, /*eval_every=*/1);
    ASSERT_TRUE(algo->SaveCheckpoint(path).ok());
  }
  std::unique_ptr<FlAlgorithm> uncoded =
      MakeAlgorithm("FedAvg", ToyConfig());
  EXPECT_EQ(uncoded->LoadCheckpoint(path).code(),
            util::StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, Version1CheckpointStillLoads) {
  // Builds a real v1 file out of a v2 one by inverting the format bump:
  // the four u64 comm counters become the two f64 totals v1 stored, the
  // residual-table count disappears, and the header version drops to 1.
  // Everything the old format did carry must keep resuming exactly.
  const std::string path = "robustness_ckpt_v1.bin";
  AlgorithmConfig config = ToyConfig();

  std::unique_ptr<FlAlgorithm> full = MakeAlgorithm("FedAvg", config);
  full->Run(4, /*eval_every=*/1);

  {
    std::unique_ptr<FlAlgorithm> first = MakeAlgorithm("FedAvg", config);
    first->Run(2, /*eval_every=*/1);
    // Start from the v2 downgrade: the byte surgery below inverts the
    // v1 -> v2 bump, and later versions append further blocks (sparse
    // tables, wasted totals, the v4 engine state) it does not model.
    ASSERT_TRUE(first->SaveCheckpoint(path, /*version=*/2).ok());
  }

  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    ASSERT_TRUE(in.good());
    bytes.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  }
  // Body layout up to the comm block: fingerprint u64, completed i64, four
  // RNG words, the cached-normal bool + f64. File header is 8 bytes.
  const std::size_t comm_at = 8 + 8 + 8 + 4 * 8 + 1 + 8;
  std::uint64_t total_down = 0;
  std::uint64_t total_up = 0;
  std::memcpy(&total_down, bytes.data() + comm_at, 8);
  std::memcpy(&total_up, bytes.data() + comm_at + 8, 8);
  double as_f64[2] = {static_cast<double>(total_down),
                      static_cast<double>(total_up)};
  // 4 x u64 -> 2 x f64: the comm block shrinks by 16 bytes.
  std::memcpy(bytes.data() + comm_at, as_f64, 16);
  bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(comm_at + 16),
              bytes.begin() + static_cast<std::ptrdiff_t>(comm_at + 32));
  // Drop the residual-table count (empty for an identity run): it sits
  // after the fault stats and the history records.
  std::uint64_t record_count = 0;
  const std::size_t records_at = comm_at + 16 + 4 * 8;
  std::memcpy(&record_count, bytes.data() + records_at, 8);
  ASSERT_EQ(record_count, 2u);
  const std::size_t residuals_at = records_at + 8 + record_count * 40;
  std::uint64_t residual_count = 0;
  std::memcpy(&residual_count, bytes.data() + residuals_at, 8);
  ASSERT_EQ(residual_count, 0u);
  bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(residuals_at),
              bytes.begin() + static_cast<std::ptrdiff_t>(residuals_at + 8));
  const std::uint32_t v1 = 1;
  std::memcpy(bytes.data() + 4, &v1, 4);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  std::unique_ptr<FlAlgorithm> resumed = MakeAlgorithm("FedAvg", config);
  ASSERT_TRUE(resumed->LoadCheckpoint(path).ok());
  EXPECT_EQ(resumed->completed_rounds(), 2);
  // v1 predates wire accounting: wire totals fall back to the raw totals.
  EXPECT_EQ(resumed->comm().total_upload_bytes(), total_up);
  EXPECT_EQ(resumed->comm().total_wire_upload_bytes(), total_up);
  resumed->Run(4, /*eval_every=*/1);
  ExpectBitIdentical(full->GlobalParams(), resumed->GlobalParams());
  ExpectSameHistory(full->history(), resumed->history());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedcross::fl
