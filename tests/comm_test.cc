// Wire-codec unit tests (comm/wire.h): frame round-trips for every scheme
// over every model-zoo architecture, the lossless guarantee of the delta
// codec on arbitrary bit patterns, the bounded-error + error-feedback
// contract of the quantized schemes, deterministic top-k tie-breaking, and
// rejection of malformed / truncated / CRC-corrupt frames.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "comm/wire.h"
#include "models/model_zoo.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace fedcross::comm {
namespace {

using Frame = std::vector<std::uint8_t>;

// Flattens a model the same way the FL layer does: parameters in
// Params() order, shape table alongside.
void FlattenModel(nn::Sequential& model, std::vector<float>& flat,
                  ShapeTable& shapes) {
  flat.clear();
  shapes.clear();
  for (const nn::Param* param : model.Params()) {
    auto numel = static_cast<std::size_t>(param->value.numel());
    shapes.push_back(static_cast<std::uint32_t>(numel));
    const float* data = param->value.data();
    flat.insert(flat.end(), data, data + numel);
  }
}

// A small instance of every paper architecture; the codec must be agnostic
// to the tensor layout, so each family exercises a different shape table.
std::vector<models::ModelFactory> ZooFactories() {
  std::vector<models::ModelFactory> factories;
  models::CnnConfig cnn;
  cnn.height = cnn.width = 8;
  cnn.conv1_channels = 4;
  cnn.conv2_channels = 8;
  cnn.fc_dim = 16;
  factories.push_back(models::MakeCnn(cnn));
  models::ResNetConfig resnet;
  resnet.height = resnet.width = 8;
  resnet.base_width = 4;
  resnet.gn_groups = 2;
  factories.push_back(models::MakeResNet(resnet));
  models::VggConfig vgg;
  vgg.height = vgg.width = 8;
  vgg.base_width = 4;
  vgg.fc_dim = 16;
  factories.push_back(models::MakeVgg(vgg));
  models::LstmConfig lstm;
  lstm.vocab_size = 12;
  lstm.embed_dim = 6;
  lstm.hidden_dim = 8;
  lstm.num_classes = 12;
  factories.push_back(models::MakeLstm(lstm));
  return factories;
}

std::vector<float> Perturbed(const std::vector<float>& reference,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> out = reference;
  for (float& v : out) v += static_cast<float>(rng.Normal(0.0, 0.02));
  return out;
}

void ExpectBitIdentical(const std::vector<float>& a,
                        const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

// Rewrites the trailing CRC so body/header mutations exercise the decoder's
// structural checks instead of tripping the CRC gate first.
void FixCrc(Frame& frame) {
  std::uint32_t crc = Crc32({frame.data(), frame.size() - 4});
  std::memcpy(frame.data() + frame.size() - 4, &crc, 4);
}

// Offset of the u64 body-length field: fixed header + the shape table.
std::size_t BodyLenOffset(const ShapeTable& shapes) {
  return 8 + 4 + 4 * shapes.size() + 8;
}

Frame EncodeSimpleUpload(Scheme scheme, const std::vector<float>& trained,
                         const std::vector<float>& reference,
                         const ShapeTable& shapes, double fraction = 0.25) {
  CodecOptions options;
  options.scheme = scheme;
  options.topk_fraction = fraction;
  std::vector<float> residual;
  util::Rng rng(99);
  Frame frame;
  EncodeUpload(options, trained, reference, shapes, residual, rng, frame);
  return frame;
}

// --- helpers ---------------------------------------------------------------

TEST(WireHelpersTest, Crc32KnownAnswers) {
  const std::string check = "123456789";
  EXPECT_EQ(Crc32({reinterpret_cast<const std::uint8_t*>(check.data()),
                   check.size()}),
            0xCBF43926u);
  EXPECT_EQ(Crc32({static_cast<const std::uint8_t*>(nullptr), 0}), 0u);
}

TEST(WireHelpersTest, TopKCountClampsToValidRange) {
  EXPECT_EQ(TopKCount(0, 0.1), 0u);
  EXPECT_EQ(TopKCount(100, 0.1), 10u);
  EXPECT_EQ(TopKCount(5, 0.1), 1u);     // rounds up from 0.5, floor is 1
  EXPECT_EQ(TopKCount(3, 0.0), 1u);     // never empty
  EXPECT_EQ(TopKCount(10, 1.0), 10u);
  EXPECT_EQ(TopKCount(10, 7.0), 10u);   // never more than n
}

TEST(WireHelpersTest, SchemeNamesRoundTrip) {
  for (Scheme scheme : {Scheme::kIdentity, Scheme::kDelta, Scheme::kInt8,
                        Scheme::kTopK, Scheme::kInt8TopK}) {
    auto parsed = ParseScheme(SchemeName(scheme));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), scheme);
  }
  EXPECT_EQ(ParseScheme("none").value(), Scheme::kIdentity);
  EXPECT_EQ(ParseScheme("int8-topk").value(), Scheme::kInt8TopK);
  EXPECT_FALSE(ParseScheme("gzip").ok());
  EXPECT_FALSE(SchemeIsLossy(Scheme::kIdentity));
  EXPECT_FALSE(SchemeIsLossy(Scheme::kDelta));
  EXPECT_TRUE(SchemeIsLossy(Scheme::kInt8TopK));
}

// --- round-trips over the model zoo ----------------------------------------

TEST(WireRoundTripTest, DispatchIsExactForEveryZooArchitecture) {
  for (const models::ModelFactory& factory : ZooFactories()) {
    nn::Sequential model = factory();
    std::vector<float> flat;
    ShapeTable shapes;
    FlattenModel(model, flat, shapes);
    ASSERT_GT(shapes.size(), 1u);

    Frame frame;
    EncodeDispatch(flat, shapes, frame);
    EXPECT_EQ(frame.size(), DispatchWireBytes(flat.size(), shapes));

    std::vector<float> decoded;
    util::Status status = DecodeDispatch(frame, shapes, decoded);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ExpectBitIdentical(flat, decoded);
  }
}

TEST(WireRoundTripTest, IdentityAndDeltaUploadsAreExactForEveryZooArch) {
  for (const models::ModelFactory& factory : ZooFactories()) {
    nn::Sequential model = factory();
    std::vector<float> reference;
    ShapeTable shapes;
    FlattenModel(model, reference, shapes);
    std::vector<float> trained = Perturbed(reference, 7);

    for (Scheme scheme : {Scheme::kIdentity, Scheme::kDelta}) {
      CodecOptions options;
      options.scheme = scheme;
      std::vector<float> residual;  // must stay untouched: lossless path
      util::Rng rng(3);
      Frame frame;
      EncodeUpload(options, trained, reference, shapes, residual, rng, frame);
      EXPECT_TRUE(residual.empty());

      std::vector<float> decoded;
      util::Status status = DecodeUpload(frame, reference, shapes, decoded);
      ASSERT_TRUE(status.ok()) << status.ToString();
      ExpectBitIdentical(trained, decoded);
    }
  }
}

TEST(WireRoundTripTest, DeltaIsLosslessOnExtremeBitPatterns) {
  ShapeTable shapes = {8};
  std::vector<float> reference = {0.0f, -0.0f, 1.0f, -1.0f, 1e-38f,
                                  std::numeric_limits<float>::max(), 2.5f,
                                  -3.75f};
  std::vector<float> trained = {
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::denorm_min(),
      -0.0f,
      std::numeric_limits<float>::lowest(),
      2.5f,  // zero delta
      std::nextafterf(-3.75f, 0.0f)};

  Frame frame = EncodeSimpleUpload(Scheme::kDelta, trained, reference, shapes);
  std::vector<float> decoded;
  util::Status status = DecodeUpload(frame, reference, shapes, decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  // NaN compares unequal to itself, so losslessness means equal *bits*.
  ExpectBitIdentical(trained, decoded);
}

TEST(WireRoundTripTest, DeltaCompressesSmallUpdates) {
  // A realistic update perturbs low-order mantissa bits; the zigzag varint
  // stream must come out smaller than the raw 4-bytes-per-param identity
  // body for payloads whose params are near their dispatched values.
  ShapeTable shapes = {512};
  std::vector<float> reference(512);
  util::Rng rng(11);
  for (float& v : reference) v = static_cast<float>(rng.Normal(0.0, 1.0));
  std::vector<float> trained = reference;
  for (std::size_t i = 0; i < trained.size(); ++i) {
    // Small bit-level drift, the common case after one local epoch.
    trained[i] = std::nextafterf(trained[i], 2.0f * trained[i]);
  }
  Frame delta = EncodeSimpleUpload(Scheme::kDelta, trained, reference, shapes);
  Frame raw =
      EncodeSimpleUpload(Scheme::kIdentity, trained, reference, shapes);
  EXPECT_LT(delta.size(), raw.size() / 2);
}

// --- quantized schemes -----------------------------------------------------

TEST(WireQuantizeTest, Int8ErrorIsBoundedByPerTensorScale) {
  ShapeTable shapes = {64, 256, 32};
  std::size_t n = 64 + 256 + 32;
  std::vector<float> reference(n), trained(n);
  util::Rng rng(21);
  for (std::size_t i = 0; i < n; ++i) {
    reference[i] = static_cast<float>(rng.Normal(0.0, 1.0));
    trained[i] = reference[i] + static_cast<float>(rng.Normal(0.0, 0.05));
  }
  CodecOptions options;
  options.scheme = Scheme::kInt8;
  std::vector<float> residual;
  util::Rng codec_rng(5);
  Frame frame;
  EncodeUpload(options, trained, reference, shapes, residual, codec_rng,
               frame);
  ASSERT_EQ(residual.size(), n);

  std::vector<float> decoded;
  ASSERT_TRUE(DecodeUpload(frame, reference, shapes, decoded).ok());

  std::size_t offset = 0;
  for (std::uint32_t len : shapes) {
    float maxabs = 0.0f;
    for (std::uint32_t i = 0; i < len; ++i) {
      maxabs = std::max(maxabs, std::fabs(trained[offset + i] -
                                          reference[offset + i]));
    }
    // Stochastic rounding moves each coordinate at most one quantization
    // step from its true value.
    float scale = maxabs / 127.0f;
    for (std::uint32_t i = 0; i < len; ++i) {
      float err = std::fabs(decoded[offset + i] - trained[offset + i]);
      EXPECT_LE(err, scale * 1.0001f);
      // The dropped part is exactly what went into the residual.
      EXPECT_NEAR(residual[offset + i],
                  trained[offset + i] - decoded[offset + i], 1e-6f);
    }
    offset += len;
  }
}

TEST(WireQuantizeTest, ErrorFeedbackDrivesCumulativeErrorToZero) {
  // Ship the same true update T times through the quantizer with error
  // feedback. The EF guarantee: the cumulative decoded mass tracks the
  // cumulative true mass to within one quantization step, so the *average*
  // transmitted update converges to the true update as 1/T.
  ShapeTable shapes = {40};
  std::vector<float> reference(40, 0.0f);
  std::vector<float> true_update(40);
  util::Rng rng(31);
  for (float& v : true_update) v = static_cast<float>(rng.Normal(0.0, 0.1));

  for (Scheme scheme : {Scheme::kInt8, Scheme::kTopK, Scheme::kInt8TopK}) {
    CodecOptions options;
    options.scheme = scheme;
    options.topk_fraction = 0.25;
    std::vector<float> residual;
    std::vector<float> cumulative(40, 0.0f);
    const int kRounds = 60;
    for (int t = 0; t < kRounds; ++t) {
      std::vector<float> trained(40);
      for (int i = 0; i < 40; ++i) trained[i] = reference[i] + true_update[i];
      util::Rng codec_rng(1000 + t);
      Frame frame;
      EncodeUpload(options, trained, reference, shapes, residual, codec_rng,
                   frame);
      std::vector<float> decoded;
      ASSERT_TRUE(DecodeUpload(frame, reference, shapes, decoded).ok());
      for (int i = 0; i < 40; ++i) cumulative[i] += decoded[i] - reference[i];
    }
    for (int i = 0; i < 40; ++i) {
      float mean_sent = cumulative[i] / kRounds;
      // Without EF a dropped coordinate would transmit 0 forever; with EF
      // the residual forces it through within a few rounds.
      EXPECT_NEAR(mean_sent, true_update[i], 0.02f)
          << SchemeName(scheme) << " coordinate " << i;
    }
  }
}

TEST(WireQuantizeTest, StochasticRoundingIsSeedDeterministic) {
  ShapeTable shapes = {128};
  std::vector<float> reference(128, 0.5f);
  std::vector<float> trained = Perturbed(reference, 13);
  for (Scheme scheme : {Scheme::kInt8, Scheme::kInt8TopK}) {
    CodecOptions options;
    options.scheme = scheme;
    std::vector<float> residual_a, residual_b;
    util::Rng rng_a(77), rng_b(77);
    Frame frame_a, frame_b;
    EncodeUpload(options, trained, reference, shapes, residual_a, rng_a,
                 frame_a);
    EncodeUpload(options, trained, reference, shapes, residual_b, rng_b,
                 frame_b);
    EXPECT_EQ(frame_a, frame_b);
    EXPECT_EQ(residual_a, residual_b);
  }
}

TEST(WireQuantizeTest, AllZeroUpdateProducesZeroScaleAndExactDecode) {
  ShapeTable shapes = {16};
  std::vector<float> reference(16, 1.25f);
  std::vector<float> trained = reference;  // no training movement
  for (Scheme scheme : {Scheme::kInt8, Scheme::kTopK, Scheme::kInt8TopK}) {
    Frame frame = EncodeSimpleUpload(scheme, trained, reference, shapes);
    std::vector<float> decoded;
    ASSERT_TRUE(DecodeUpload(frame, reference, shapes, decoded).ok());
    ExpectBitIdentical(reference, decoded);
  }
}

// --- top-k selection -------------------------------------------------------

TEST(WireTopKTest, KeepsLargestMagnitudesAndBreaksTiesTowardLowIndex) {
  ShapeTable shapes = {8};
  std::vector<float> reference(8, 0.0f);
  //                            0     1     2    3    4    5    6    7
  std::vector<float> trained = {1.0f, -2.0f, 2.0f, 2.0f, 0.5f, 2.0f, 0.0f,
                                3.0f};
  // k = round(0.375 * 8) = 3: index 7 (|3|) wins outright; the four
  // magnitude-2 entries tie and the two lowest indices (1, 2) survive.
  Frame frame =
      EncodeSimpleUpload(Scheme::kTopK, trained, reference, shapes, 0.375);
  std::vector<float> decoded;
  ASSERT_TRUE(DecodeUpload(frame, reference, shapes, decoded).ok());
  std::vector<float> expected = {0.0f, -2.0f, 2.0f, 0.0f,
                                 0.0f, 0.0f,  0.0f, 3.0f};
  EXPECT_EQ(decoded, expected);
}

TEST(WireTopKTest, ResidualHoldsExactlyTheDroppedCoordinates) {
  ShapeTable shapes = {10};
  std::vector<float> reference(10, 0.0f);
  std::vector<float> trained = {5.0f, 0.1f, 0.2f, 4.0f, 0.3f,
                                0.4f, 3.0f, 0.5f, 0.6f, 0.7f};
  CodecOptions options;
  options.scheme = Scheme::kTopK;
  options.topk_fraction = 0.3;  // k = 3 -> indices 0, 3, 6 survive
  std::vector<float> residual;
  util::Rng rng(1);
  Frame frame;
  EncodeUpload(options, trained, reference, shapes, residual, rng, frame);
  ASSERT_EQ(residual.size(), 10u);
  for (int i : {0, 3, 6}) EXPECT_EQ(residual[i], 0.0f) << i;
  for (int i : {1, 2, 4, 5, 7, 8, 9}) {
    EXPECT_EQ(residual[i], trained[i]) << i;
  }
}

TEST(WireTopKTest, SingleParamModelAlwaysShipsItsOneCoordinate) {
  ShapeTable shapes = {1};
  std::vector<float> reference = {2.0f};
  std::vector<float> trained = {-1.5f};
  Frame frame =
      EncodeSimpleUpload(Scheme::kTopK, trained, reference, shapes, 0.01);
  std::vector<float> decoded;
  ASSERT_TRUE(DecodeUpload(frame, reference, shapes, decoded).ok());
  EXPECT_EQ(decoded[0], -1.5f);
}

// --- corrupted uploads stay screenable -------------------------------------

TEST(WireCorruptionTest, NonFiniteUploadDecodesNonFiniteAndSparesResidual) {
  ShapeTable shapes = {6};
  std::vector<float> reference(6, 0.0f);
  std::vector<float> trained = {0.1f,
                                std::numeric_limits<float>::quiet_NaN(),
                                0.2f,
                                0.3f,
                                0.4f,
                                0.5f};
  for (Scheme scheme : {Scheme::kInt8, Scheme::kTopK, Scheme::kInt8TopK}) {
    CodecOptions options;
    options.scheme = scheme;
    options.topk_fraction = 0.5;
    std::vector<float> residual(6, 0.25f);  // pre-existing EF state
    util::Rng rng(4);
    Frame frame;
    EncodeUpload(options, trained, reference, shapes, residual, rng, frame);
    // One corrupted round must not poison the accumulated residual.
    EXPECT_EQ(residual, std::vector<float>(6, 0.25f)) << SchemeName(scheme);

    std::vector<float> decoded;
    ASSERT_TRUE(DecodeUpload(frame, reference, shapes, decoded).ok());
    bool any_nonfinite = false;
    for (float v : decoded) any_nonfinite |= !std::isfinite(v);
    EXPECT_TRUE(any_nonfinite) << SchemeName(scheme);
  }
}

// --- malformed frames ------------------------------------------------------

class WireRejectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reference_.assign(20, 0.5f);
    trained_ = Perturbed(reference_, 5);
    shapes_ = {12, 8};
  }

  util::Status Decode(const Frame& frame, std::vector<float>& out) {
    return DecodeUpload(frame, reference_, shapes_, out);
  }

  ShapeTable shapes_;
  std::vector<float> reference_;
  std::vector<float> trained_;
};

TEST_F(WireRejectTest, TruncationAtEveryBoundaryIsRejected) {
  Frame frame =
      EncodeSimpleUpload(Scheme::kIdentity, trained_, reference_, shapes_);
  std::vector<float> out;
  for (std::size_t keep : {0ul, 3ul, 11ul, frame.size() - 5, frame.size() - 1}) {
    Frame cut(frame.begin(), frame.begin() + keep);
    util::Status status = Decode(cut, out);
    EXPECT_FALSE(status.ok()) << "kept " << keep << " bytes";
    EXPECT_NE(status.ToString().find("malformed"), std::string::npos);
  }
}

TEST_F(WireRejectTest, EverySingleByteFlipTripsTheCrc) {
  Frame frame =
      EncodeSimpleUpload(Scheme::kDelta, trained_, reference_, shapes_);
  std::vector<float> out;
  // Flip a byte in the header, the body, and the CRC itself.
  for (std::size_t at : {0ul, 5ul, frame.size() / 2, frame.size() - 2}) {
    Frame bad = frame;
    bad[at] ^= 0x40;
    EXPECT_FALSE(Decode(bad, out).ok()) << "flipped byte " << at;
  }
}

TEST_F(WireRejectTest, DispatchDecoderRejectsCodedSchemes) {
  Frame frame =
      EncodeSimpleUpload(Scheme::kDelta, trained_, reference_, shapes_);
  std::vector<float> out;
  util::Status status = DecodeDispatch(frame, shapes_, out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("identity"), std::string::npos);
}

TEST_F(WireRejectTest, ShapeTableMismatchIsRejected) {
  Frame frame =
      EncodeSimpleUpload(Scheme::kIdentity, trained_, reference_, shapes_);
  std::vector<float> out;
  // Same total params, different split: the frame must not decode into a
  // model with a different tensor layout.
  ShapeTable other = {8, 12};
  EXPECT_FALSE(DecodeUpload(frame, reference_, other, out).ok());
  ShapeTable fewer = {12};
  EXPECT_FALSE(DecodeUpload(frame, reference_, fewer, out).ok());
}

TEST_F(WireRejectTest, ReferenceSizeMismatchIsRejected) {
  Frame frame =
      EncodeSimpleUpload(Scheme::kDelta, trained_, reference_, shapes_);
  std::vector<float> out;
  std::vector<float> short_reference(reference_.begin(),
                                     reference_.end() - 1);
  EXPECT_FALSE(
      DecodeUpload(frame, short_reference, shapes_, out).ok());
}

TEST_F(WireRejectTest, UnknownSchemeByteIsRejected) {
  Frame frame =
      EncodeSimpleUpload(Scheme::kIdentity, trained_, reference_, shapes_);
  frame[5] = 200;  // scheme byte past the last known scheme
  FixCrc(frame);
  std::vector<float> out;
  util::Status status = Decode(frame, out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("unknown scheme"), std::string::npos);
}

TEST_F(WireRejectTest, TrailingDeltaBytesAreRejected) {
  Frame frame =
      EncodeSimpleUpload(Scheme::kDelta, trained_, reference_, shapes_);
  // Splice one extra zero-delta varint byte into the body, keep the header
  // honest about it, and re-sign the frame: the decoder must notice the
  // stream decodes all params before the body ends.
  std::uint64_t body_len = 0;
  std::size_t len_at = BodyLenOffset(shapes_);
  std::memcpy(&body_len, frame.data() + len_at, 8);
  body_len += 1;
  std::memcpy(frame.data() + len_at, &body_len, 8);
  frame.insert(frame.end() - 4, std::uint8_t{0});
  FixCrc(frame);
  std::vector<float> out;
  util::Status status = Decode(frame, out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("trailing delta"), std::string::npos);
}

TEST_F(WireRejectTest, TopKBitmapPopulationMismatchIsRejected) {
  Frame frame =
      EncodeSimpleUpload(Scheme::kTopK, trained_, reference_, shapes_, 0.25);
  // The bitmap starts right after the u64 k at the head of the body. Set an
  // extra bit: popcount 6 != k 5 must be caught even though the CRC is
  // re-signed (a buggy encoder, not line noise).
  std::size_t body_at = BodyLenOffset(shapes_) + 8;
  std::size_t bitmap_at = body_at + 8;
  for (std::size_t i = 0; i < 20; ++i) {
    std::uint8_t& byte = frame[bitmap_at + i / 8];
    if (((byte >> (i % 8)) & 1u) == 0) {
      byte |= static_cast<std::uint8_t>(1u << (i % 8));
      break;
    }
  }
  FixCrc(frame);
  std::vector<float> out;
  util::Status status = Decode(frame, out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("population"), std::string::npos);
}

TEST_F(WireRejectTest, TopKCountOutOfRangeIsRejected) {
  Frame frame =
      EncodeSimpleUpload(Scheme::kTopK, trained_, reference_, shapes_, 0.25);
  std::size_t body_at = BodyLenOffset(shapes_) + 8;
  std::uint64_t huge = 1000;  // > param count
  std::memcpy(frame.data() + body_at, &huge, 8);
  FixCrc(frame);
  std::vector<float> out;
  util::Status status = Decode(frame, out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("out of range"), std::string::npos);
}

TEST_F(WireRejectTest, EmptyAndForeignBuffersAreRejected) {
  std::vector<float> out;
  EXPECT_FALSE(Decode({}, out).ok());
  Frame garbage(100, 0xAB);
  EXPECT_FALSE(Decode(garbage, out).ok());
}

}  // namespace
}  // namespace fedcross::comm
