#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/sequential.h"
#include "optim/schedule.h"
#include "optim/sgd.h"
#include "test_util.h"
#include "util/rng.h"

namespace fedcross::optim {
namespace {

// A single scalar parameter with a hand-set gradient.
struct ScalarParam {
  nn::Param param;
  ScalarParam() : param(Tensor::Full({1}, 1.0f)) {}
  float value() const { return param.value.at(0); }
  void set_grad(float g) { param.grad = Tensor::Full({1}, g); }
};

TEST(SgdTest, PlainStep) {
  ScalarParam scalar;
  SgdOptions options;
  options.lr = 0.1f;
  Sgd sgd({&scalar.param}, options);
  scalar.set_grad(2.0f);
  sgd.Step();
  EXPECT_FLOAT_EQ(scalar.value(), 1.0f - 0.1f * 2.0f);
}

TEST(SgdTest, MomentumAccumulates) {
  ScalarParam scalar;
  SgdOptions options;
  options.lr = 0.1f;
  options.momentum = 0.5f;
  Sgd sgd({&scalar.param}, options);
  scalar.set_grad(1.0f);
  sgd.Step();  // v=1, w = 1 - 0.1 = 0.9
  EXPECT_FLOAT_EQ(scalar.value(), 0.9f);
  scalar.set_grad(1.0f);
  sgd.Step();  // v = 0.5 + 1 = 1.5, w = 0.9 - 0.15 = 0.75
  EXPECT_FLOAT_EQ(scalar.value(), 0.75f);
}

TEST(SgdTest, WeightDecayShrinksParams) {
  ScalarParam scalar;
  SgdOptions options;
  options.lr = 0.1f;
  options.weight_decay = 0.5f;
  Sgd sgd({&scalar.param}, options);
  scalar.set_grad(0.0f);
  sgd.Step();  // w = 1 - 0.1*0.5*1 = 0.95
  EXPECT_FLOAT_EQ(scalar.value(), 0.95f);
}

TEST(SgdTest, GradClippingBoundsStep) {
  ScalarParam scalar;
  SgdOptions options;
  options.lr = 1.0f;
  options.grad_clip_norm = 1.0f;
  Sgd sgd({&scalar.param}, options);
  scalar.set_grad(100.0f);
  sgd.Step();  // clipped to norm 1 -> w = 1 - 1 = 0
  EXPECT_FLOAT_EQ(scalar.value(), 0.0f);
}

TEST(SgdTest, ClippingIsGlobalAcrossParams) {
  ScalarParam a, b;
  SgdOptions options;
  options.lr = 1.0f;
  options.grad_clip_norm = 5.0f;
  Sgd sgd({&a.param, &b.param}, options);
  a.set_grad(3.0f);
  b.set_grad(4.0f);  // global norm 5: no clipping
  sgd.Step();
  EXPECT_FLOAT_EQ(a.value(), 1.0f - 3.0f);
  EXPECT_FLOAT_EQ(b.value(), 1.0f - 4.0f);
}

TEST(SgdTest, SetLrTakesEffect) {
  ScalarParam scalar;
  SgdOptions options;
  options.lr = 0.1f;
  Sgd sgd({&scalar.param}, options);
  sgd.set_lr(0.5f);
  EXPECT_FLOAT_EQ(sgd.lr(), 0.5f);
  scalar.set_grad(1.0f);
  sgd.Step();
  EXPECT_FLOAT_EQ(scalar.value(), 0.5f);
}

TEST(SgdTest, TrainingReducesLossOnToyProblem) {
  util::Rng rng(1);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Linear>(4, 2, rng));
  auto dataset = testing::MakeToyDataset(40, 4, 0.3f, 7);

  SgdOptions options;
  options.lr = 0.1f;
  options.momentum = 0.5f;
  Sgd sgd(model.Params(), options);
  nn::CrossEntropyLoss criterion;

  Tensor features;
  std::vector<int> labels;
  std::vector<int> all(dataset->size());
  for (int i = 0; i < dataset->size(); ++i) all[i] = i;
  dataset->GetBatch(all, features, labels);

  float initial_loss = criterion.Compute(model.Forward(features, false),
                                         labels, false).loss;
  for (int step = 0; step < 50; ++step) {
    model.ZeroGrad();
    nn::LossResult loss =
        criterion.Compute(model.Forward(features, true), labels);
    model.Backward(loss.grad_logits);
    sgd.Step();
  }
  float final_loss = criterion.Compute(model.Forward(features, false),
                                       labels, false).loss;
  EXPECT_LT(final_loss, initial_loss * 0.5f);
}

// -------------------------------------------------------------- Schedules

TEST(ScheduleTest, ConstantLr) {
  ConstantLr schedule(0.05f);
  EXPECT_FLOAT_EQ(schedule.LrAt(0), 0.05f);
  EXPECT_FLOAT_EQ(schedule.LrAt(1000000), 0.05f);
}

TEST(ScheduleTest, InverseTimeDecays) {
  InverseTimeLr schedule(2.0f, 9.0f);
  EXPECT_FLOAT_EQ(schedule.LrAt(0), 0.2f);  // 2/(0+9+1)
  EXPECT_GT(schedule.LrAt(10), schedule.LrAt(100));
  EXPECT_GT(schedule.LrAt(100), schedule.LrAt(1000));
}

TEST(ScheduleTest, InverseTimeAsymptoticRate) {
  InverseTimeLr schedule(1.0f, 0.0f);
  // lr(t) * (t+1) = c: exact hyperbolic decay.
  for (std::int64_t t : {10, 100, 1000}) {
    EXPECT_NEAR(schedule.LrAt(t) * (t + 1), 1.0, 1e-5);
  }
}

}  // namespace
}  // namespace fedcross::optim
