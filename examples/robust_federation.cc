// Scenario: a production-flavoured deployment — devices drop out, straggle
// past the round deadline, or upload corrupted (even Byzantine) models.
// This example sweeps fault profiles across FedAvg and FedCross, with and
// without the server-side defences (upload screening, robust aggregation,
// over-provisioned selection), prints the comparison, and writes it to
// table_robustness.csv. It finishes with a full training-state checkpoint
// demo: the run is "killed" mid-flight and resumed bit-identically.
//
// Observability is on by default here: every round of every cell streams a
// structured record to events.jsonl and the whole sweep is traced into
// trace.json (load it in Perfetto / chrome://tracing). Disable with
// --events_out none / --trace_out none.
//
//   ./robust_federation [--rounds 40] [--clients 20] [--k 4]
//                       [--exec layers|plan] [--plan_bf16 false]
//                       [--dp_clip 0] [--dp_noise 0] [--dp_delta 1e-5]
//                       [--secure_agg false]
//                       [--events_out events.jsonl] [--trace_out trace.json]
//                       [--metrics_out m.json] [--log_level info]
//
// The privacy flags apply to every cell: clipping/noise run on-device
// before fault corruption, and the masking overlay must unmask exactly even
// in cells where dropouts/rejections leave dangling pair masks — the
// adversarial conditions double as a secure-aggregation recovery stress.
#include <cmath>
#include <cstdio>
#include <memory>

#include "comm/wire.h"
#include "core/fedcross.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "fl/fedavg.h"
#include "models/model_zoo.h"
#include "privacy/dp.h"
#include "privacy/masking.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/obs_init.h"
#include "util/table_printer.h"

namespace {

using namespace fedcross;

data::FederatedDataset MakeData(int num_clients, std::uint64_t seed) {
  data::SyntheticImageOptions image_options;
  image_options.num_classes = 10;
  image_options.height = image_options.width = 8;
  image_options.train_per_class = 60;
  image_options.test_per_class = 20;
  image_options.seed = seed;
  data::ImageCorpus corpus = data::MakeSyntheticImageCorpus(image_options);
  util::Rng rng(seed + 1);
  data::FederatedDataset federated;
  federated.num_classes = 10;
  federated.client_train = data::MakeClientShards(
      corpus.train, data::DirichletPartition(*corpus.train, num_clients, 0.5,
                                             rng));
  federated.test = corpus.test;
  return federated;
}

// One cell of the sweep: a fault environment plus the server's defences.
struct Condition {
  const char* name;
  fl::FaultModel faults;
  fl::ScreeningOptions screening;
  fl::AggregatorOptions aggregator;
};

std::vector<Condition> MakeConditions() {
  std::vector<Condition> conditions;

  conditions.push_back({"clean", {}, {}, {}});

  {
    Condition c{"30% dropout", {}, {}, {}};
    c.faults.profile.dropout_prob = 0.3;
    conditions.push_back(c);
  }
  {
    Condition c{"dropout + over-provision", {}, {}, {}};
    c.faults.profile.dropout_prob = 0.3;
    c.faults.over_provision = 2;
    conditions.push_back(c);
  }
  {
    Condition c{"stragglers, deadline 4x", {}, {}, {}};
    c.faults.profile.straggler_prob = 0.4;
    c.faults.profile.slowdown_min = 2.0;
    c.faults.profile.slowdown_max = 8.0;
    c.faults.round_deadline = 4.0;
    conditions.push_back(c);
  }
  {
    Condition c{"NaN uploads + screening", {}, {}, {}};
    c.faults.profile.corrupt_prob = 0.2;
    c.faults.profile.corruption = fl::CorruptionKind::kNanInject;
    c.screening.check_finite = true;
    conditions.push_back(c);
  }
  {
    Condition c{"Byzantine + trimmed mean", {}, {}, {}};
    c.faults.profile.corrupt_prob = 0.2;
    c.faults.profile.corruption = fl::CorruptionKind::kSignFlip;
    c.faults.profile.corruption_scale = 10.0f;
    c.aggregator.kind = fl::AggregatorKind::kTrimmedMean;
    c.aggregator.trim_ratio = 0.25;
    conditions.push_back(c);
  }
  {
    Condition c{"exploding + median", {}, {}, {}};
    c.faults.profile.corrupt_prob = 0.2;
    c.faults.profile.corruption = fl::CorruptionKind::kExplodingNorm;
    c.faults.profile.corruption_scale = 100.0f;
    c.aggregator.kind = fl::AggregatorKind::kCoordinateMedian;
    conditions.push_back(c);
  }
  return conditions;
}

// Wire codec applied to every cell of the sweep (set once from --codec):
// fault corruption and screening interact with the codec path, so the whole
// table can be re-measured under a compressed uplink.
fedcross::comm::CodecOptions g_codec;

// Local-training executor for every cell (set once from --exec); the fault
// and screening paths are exercised identically under both runtimes.
fl::ExecMode g_exec = fl::ExecMode::kLayers;
bool g_plan_bf16 = false;  // --plan_bf16: bf16 replica arenas in plan mode

// Privacy options applied to every cell (set once from --dp_* /
// --secure_agg): DP sanitisation and the masked-aggregation overlay run
// under each cell's fault environment.
privacy::DpOptions g_dp;
privacy::MaskOptions g_secure_agg;

fl::AlgorithmConfig MakeConfig(int k, const Condition& condition) {
  fl::AlgorithmConfig config;
  config.clients_per_round = k;
  config.train.local_epochs = 5;
  config.train.batch_size = 20;
  config.train.lr = 0.03f;
  config.train.momentum = 0.5f;
  config.train.exec = g_exec;
  config.train.plan_bf16 = g_plan_bf16;
  config.faults = condition.faults;
  config.screening = condition.screening;
  config.aggregator = condition.aggregator;
  config.codec = g_codec;
  config.dp = g_dp;
  config.secure_agg = g_secure_agg;
  return config;
}

struct CellResult {
  float best_acc = 0.0f;
  float final_acc = 0.0f;
  fl::FaultStats stats;
};

CellResult RunCell(const char* algorithm, const Condition& condition,
                   int rounds, int num_clients, int k,
                   const models::ModelFactory& factory) {
  fl::AlgorithmConfig config = MakeConfig(k, condition);
  std::unique_ptr<fl::FlAlgorithm> algo;
  if (std::string(algorithm) == "FedAvg") {
    algo = std::make_unique<fl::FedAvg>(config, MakeData(num_clients, 5),
                                        factory);
  } else {
    core::FedCrossOptions options;
    options.alpha = 0.9;
    algo = std::make_unique<core::FedCross>(config, MakeData(num_clients, 5),
                                            factory, options);
  }
  const fl::MetricsHistory& history = algo->Run(rounds, 5);
  CellResult result;
  result.best_acc = history.BestAccuracy();
  result.final_acc = history.FinalAccuracy();
  result.stats = algo->fault_stats();
  return result;
}

// Kills a FedCross run after rounds/2 rounds (checkpoint on disk, instance
// destroyed) and resumes it in a fresh instance; returns true if the
// resumed model matches an uninterrupted run bit-for-bit.
bool DemoCheckpointResume(int rounds, int num_clients, int k,
                          const models::ModelFactory& factory) {
  const char* path = "fedcross_training_state.ckpt";
  Condition clean{"clean", {}, {}, {}};
  fl::AlgorithmConfig config = MakeConfig(k, clean);
  core::FedCrossOptions options;
  options.alpha = 0.9;

  core::FedCross full(config, MakeData(num_clients, 5), factory, options);
  full.Run(rounds, 1);

  {
    core::FedCross first(config, MakeData(num_clients, 5), factory, options);
    first.EnableAutoCheckpoint(path, 1);
    first.Run(rounds / 2, 1);
    // The instance dies here — only the checkpoint file survives.
  }

  core::FedCross resumed(config, MakeData(num_clients, 5), factory, options);
  util::Status loaded = resumed.LoadCheckpoint(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "resume failed: %s\n", loaded.ToString().c_str());
    return false;
  }
  std::printf("resumed from round %d\n", resumed.completed_rounds());
  resumed.Run(rounds, 1);

  fl::FlatParams a = full.GlobalParams();
  fl::FlatParams b = resumed.GlobalParams();
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  std::remove(path);
  return true;
}

int Run(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int rounds = flags.GetInt("rounds", 40);
  int num_clients = flags.GetInt("clients", 20);
  int k = flags.GetInt("k", 4);
  std::string codec_name = flags.GetString("codec", "identity");
  double topk = flags.GetDouble("topk", 0.1);
  std::string exec_name = flags.GetString("exec", "layers");
  bool plan_bf16 = flags.GetBool("plan_bf16", false);
  double dp_clip = flags.GetDouble("dp_clip", 0.0);
  double dp_noise = flags.GetDouble("dp_noise", 0.0);
  double dp_delta = flags.GetDouble("dp_delta", 1e-5);
  bool secure_agg = flags.GetBool("secure_agg", false);
  util::ObsOptions obs_defaults;
  obs_defaults.events_out = "events.jsonl";
  obs_defaults.trace_out = "trace.json";
  util::Status obs_status = util::InitObservability(flags, obs_defaults);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  if (!obs_status.ok()) {
    std::fprintf(stderr, "%s\n", obs_status.ToString().c_str());
    return 1;
  }
  util::StatusOr<comm::Scheme> scheme = comm::ParseScheme(codec_name);
  if (!scheme.ok()) {
    std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
    return 1;
  }
  g_codec.scheme = scheme.value();
  g_codec.topk_fraction = topk;
  if (!fl::ParseExecMode(exec_name, &g_exec)) {
    std::fprintf(stderr, "unknown --exec '%s' (want layers|plan)\n",
                 exec_name.c_str());
    return 1;
  }
  g_plan_bf16 = plan_bf16;
  g_dp.clip_norm = static_cast<float>(dp_clip);
  g_dp.noise_multiplier = static_cast<float>(dp_noise);
  g_dp.delta = dp_delta;
  g_secure_agg.enabled = secure_agg;

  models::CnnConfig cnn;
  cnn.height = cnn.width = 8;
  cnn.num_classes = 10;
  models::ModelFactory factory = models::MakeCnn(cnn);

  util::TablePrinter table(
      {"Condition", "FedAvg best (%)", "FedCross best (%)", "dropped",
       "stragglers", "corrupted", "rejected"});
  util::CsvWriter csv("table_robustness.csv");
  csv.WriteRow({"condition", "algorithm", "best_accuracy", "final_accuracy",
                "dropouts", "stragglers", "corrupted", "rejected"});

  for (const Condition& condition : MakeConditions()) {
    CellResult cells[2];
    const char* algorithms[] = {"FedAvg", "FedCross"};
    for (int a = 0; a < 2; ++a) {
      cells[a] = RunCell(algorithms[a], condition, rounds, num_clients, k,
                         factory);
      csv.WriteRow({condition.name, algorithms[a],
                    util::CsvWriter::Field(cells[a].best_acc),
                    util::CsvWriter::Field(cells[a].final_acc),
                    util::CsvWriter::Field(
                        static_cast<int>(cells[a].stats.dropouts)),
                    util::CsvWriter::Field(
                        static_cast<int>(cells[a].stats.stragglers)),
                    util::CsvWriter::Field(
                        static_cast<int>(cells[a].stats.corrupted)),
                    util::CsvWriter::Field(
                        static_cast<int>(cells[a].stats.rejected))});
    }
    // The fault columns report the FedCross run (both runs draw from the
    // same fault model; counts differ only by sampling).
    const fl::FaultStats& stats = cells[1].stats;
    table.AddRow({condition.name,
                  util::TablePrinter::Fixed(cells[0].best_acc * 100),
                  util::TablePrinter::Fixed(cells[1].best_acc * 100),
                  std::to_string(stats.dropouts),
                  std::to_string(stats.stragglers),
                  std::to_string(stats.corrupted),
                  std::to_string(stats.rejected)});
    std::printf("finished: %s\n", condition.name);
  }

  std::printf("\n=== Robustness study: FedAvg vs FedCross under faults ===\n");
  table.Print(stdout);
  std::printf("\nwrote table_robustness.csv (%s)\n",
              csv.ok() ? "ok" : "WRITE FAILED");

  std::printf("\n=== Checkpoint/resume: kill at round %d, resume to %d ===\n",
              rounds / 2, rounds);
  bool identical =
      DemoCheckpointResume(rounds, num_clients, k, factory);
  std::printf("resumed run bit-identical to uninterrupted run: %s\n",
              identical ? "yes" : "NO (bug!)");

  util::Status flushed = util::FlushObservability();
  if (!flushed.ok()) {
    std::fprintf(stderr, "%s\n", flushed.ToString().c_str());
  }
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
