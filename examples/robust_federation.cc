// Scenario: a production-flavoured deployment — devices drop out
// mid-round and uploads are sanitised with differential privacy. This
// example sweeps both knobs and reports how FedCross degrades, then saves
// the final global model as a checkpoint and restores it.
//
//   ./robust_federation [--rounds 40] [--clients 20] [--k 4]
#include <cstdio>

#include "core/fedcross.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "fl/privacy.h"
#include "models/model_zoo.h"
#include "nn/checkpoint.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace {

using namespace fedcross;

data::FederatedDataset MakeData(int num_clients, std::uint64_t seed) {
  data::SyntheticImageOptions image_options;
  image_options.num_classes = 10;
  image_options.height = image_options.width = 8;
  image_options.train_per_class = 60;
  image_options.test_per_class = 20;
  image_options.seed = seed;
  data::ImageCorpus corpus = data::MakeSyntheticImageCorpus(image_options);
  util::Rng rng(seed + 1);
  data::FederatedDataset federated;
  federated.num_classes = 10;
  federated.client_train = data::MakeClientShards(
      corpus.train, data::DirichletPartition(*corpus.train, num_clients, 0.5,
                                             rng));
  federated.test = corpus.test;
  return federated;
}

int Run(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int rounds = flags.GetInt("rounds", 40);
  int num_clients = flags.GetInt("clients", 20);
  int k = flags.GetInt("k", 4);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  models::CnnConfig cnn;
  cnn.height = cnn.width = 8;
  cnn.num_classes = 10;
  models::ModelFactory factory = models::MakeCnn(cnn);

  struct Condition {
    const char* name;
    double dropout;
    float clip;
    float noise;
  };
  const Condition conditions[] = {
      {"clean", 0.0, 0.0f, 0.0f},
      {"30% dropout", 0.3, 0.0f, 0.0f},
      {"DP clip=5 sigma=0.01", 0.0, 5.0f, 0.01f},
      {"DP clip=5 sigma=0.05", 0.0, 5.0f, 0.05f},
      {"dropout + DP", 0.3, 5.0f, 0.01f},
  };

  util::TablePrinter table({"Condition", "Best acc (%)", "Final acc (%)",
                            "Per-round eps (delta=1e-5)"});
  fl::FlatParams last_global;
  for (const Condition& condition : conditions) {
    fl::AlgorithmConfig config;
    config.clients_per_round = k;
    config.train.local_epochs = 5;
    config.train.batch_size = 20;
    config.train.lr = 0.03f;
    config.train.momentum = 0.5f;
    config.dropout_prob = condition.dropout;
    config.dp.clip_norm = condition.clip;
    config.dp.noise_multiplier = condition.noise;

    core::FedCrossOptions options;
    options.alpha = 0.9;
    core::FedCross fedcross(config, MakeData(num_clients, 5), factory,
                            options);
    const fl::MetricsHistory& history = fedcross.Run(rounds, 5);
    std::string epsilon =
        condition.noise > 0.0f
            ? util::TablePrinter::Fixed(
                  fl::GaussianMechanismEpsilon(condition.noise, 1e-5), 1)
            : "-";
    table.AddRow({condition.name,
                  util::TablePrinter::Fixed(history.BestAccuracy() * 100),
                  util::TablePrinter::Fixed(history.FinalAccuracy() * 100),
                  epsilon});
    last_global = fedcross.GlobalParams();
    std::printf("finished: %s\n", condition.name);
  }

  std::printf("\n=== Robustness study: FedCross under dropout and DP ===\n");
  table.Print(stdout);

  // Checkpoint the last global model and restore it into a fresh instance.
  const char* path = "fedcross_global.fcpt";
  nn::Sequential model = factory();
  model.ParamsFromFlat(last_global);
  util::Status saved = nn::SaveModel(model, path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  nn::Sequential restored = factory();
  util::Status loaded = nn::LoadModel(restored, path);
  std::printf("\ncheckpoint %s: save %s, restore %s, %lld params\n", path,
              saved.ToString().c_str(), loaded.ToString().c_str(),
              static_cast<long long>(restored.NumParams()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
