// Scenario: an AIoT fleet (the paper's motivating setting) whose devices
// hold heavily skewed local data. This example sweeps the Dirichlet
// heterogeneity parameter and compares FedAvg against FedCross at each
// level, printing a compact study table — how much accuracy does the
// one-to-multi scheme lose as skew grows, and how much does multi-to-multi
// cross-aggregation recover?
//
//   ./heterogeneity_study [--rounds 60] [--clients 30] [--k 3]
#include <cstdio>
#include <memory>

#include "core/fedcross.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "fl/fedavg.h"
#include "models/model_zoo.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace {

using namespace fedcross;

data::FederatedDataset MakeData(double beta, int num_clients,
                                std::uint64_t seed) {
  data::SyntheticImageOptions image_options;
  image_options.num_classes = 10;
  image_options.height = image_options.width = 8;
  image_options.train_per_class = 60;
  image_options.test_per_class = 20;
  image_options.seed = seed;
  data::ImageCorpus corpus = data::MakeSyntheticImageCorpus(image_options);

  util::Rng rng(seed + 1);
  data::FederatedDataset federated;
  federated.num_classes = 10;
  federated.client_train = data::MakeClientShards(
      corpus.train,
      beta > 0 ? data::DirichletPartition(*corpus.train, num_clients, beta,
                                          rng)
               : data::IidPartition(*corpus.train, num_clients, rng));
  federated.test = corpus.test;
  return federated;
}

int Run(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int rounds = flags.GetInt("rounds", 60);
  int num_clients = flags.GetInt("clients", 30);
  int k = flags.GetInt("k", 3);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  models::CnnConfig cnn;
  cnn.height = cnn.width = 8;
  cnn.num_classes = 10;
  models::ModelFactory factory = models::MakeCnn(cnn);

  fl::AlgorithmConfig config;
  config.clients_per_round = k;
  config.train.local_epochs = 5;
  config.train.batch_size = 20;
  config.train.lr = 0.03f;
  config.train.momentum = 0.5f;

  util::TablePrinter table({"Heterogeneity", "FedAvg best (%)",
                            "FedCross best (%)", "FedCross gain (pp)"});
  for (double beta : {0.1, 0.5, 1.0, 0.0}) {
    fl::FedAvg fedavg(config, MakeData(beta, num_clients, 3), factory);
    double fedavg_best = fedavg.Run(rounds, 2).BestAccuracy() * 100;

    core::FedCrossOptions options;
    options.alpha = 0.9;
    core::FedCross fedcross(config, MakeData(beta, num_clients, 3), factory,
                            options);
    double fedcross_best = fedcross.Run(rounds, 2).BestAccuracy() * 100;

    table.AddRow({beta > 0 ? "Dir(" + util::TablePrinter::Fixed(beta, 1) + ")"
                           : "IID",
                  util::TablePrinter::Fixed(fedavg_best),
                  util::TablePrinter::Fixed(fedcross_best),
                  util::TablePrinter::Fixed(fedcross_best - fedavg_best)});
    std::printf("finished %s\n",
                (beta > 0 ? "beta=" + util::TablePrinter::Fixed(beta, 1)
                          : std::string("IID"))
                    .c_str());
  }

  std::printf("\n=== Heterogeneity study: FedAvg vs FedCross (CNN, %d "
              "clients, K=%d, %d rounds) ===\n",
              num_clients, k, rounds);
  table.Print(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
