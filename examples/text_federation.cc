// Scenario: federated next-character language modelling (the paper's
// Shakespeare workload). Each client is a "role" with its own character
// statistics — a naturally non-IID text federation. An LSTM classifier is
// trained with FedCross and with FedAvg for comparison; we also show the
// per-client personalisation gap (global model accuracy on each client's
// own data distribution).
//
//   ./text_federation [--rounds 30] [--clients 12] [--k 3]
#include <cstdio>
#include <memory>

#include "core/fedcross.h"
#include "data/synthetic_text.h"
#include "fl/evaluator.h"
#include "fl/fedavg.h"
#include "models/model_zoo.h"
#include "util/flags.h"
#include "util/table_printer.h"

namespace {

using namespace fedcross;

int Run(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int rounds = flags.GetInt("rounds", 30);
  int num_clients = flags.GetInt("clients", 12);
  int k = flags.GetInt("k", 3);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  data::SyntheticCharLmOptions text_options;
  text_options.num_clients = num_clients;
  text_options.vocab_size = 24;
  text_options.seq_len = 12;
  text_options.mean_samples_per_client = 150;
  text_options.test_samples = 500;

  models::LstmConfig lstm;
  lstm.vocab_size = 24;
  lstm.num_classes = 24;
  lstm.embed_dim = 12;
  lstm.hidden_dim = 24;
  models::ModelFactory factory = models::MakeLstm(lstm);

  fl::AlgorithmConfig config;
  config.clients_per_round = k;
  config.train.local_epochs = 3;
  config.train.batch_size = 20;
  config.train.lr = 0.1f;
  config.train.momentum = 0.5f;

  std::printf("Federated char-LM: %d role clients, vocab %d, seq %d\n",
              num_clients, text_options.vocab_size, text_options.seq_len);

  // FedAvg baseline.
  fl::FedAvg fedavg(config, data::MakeSyntheticCharLm(text_options), factory);
  fedavg.Run(rounds, 5);

  // FedCross.
  core::FedCrossOptions options;
  options.alpha = 0.9;
  core::FedCross fedcross(config, data::MakeSyntheticCharLm(text_options),
                          factory, options);
  fedcross.Run(rounds, 5);

  util::TablePrinter table({"Method", "Best acc (%)", "Final acc (%)",
                            "Final loss"});
  for (fl::FlAlgorithm* algorithm :
       {static_cast<fl::FlAlgorithm*>(&fedavg),
        static_cast<fl::FlAlgorithm*>(&fedcross)}) {
    const fl::MetricsHistory& history = algorithm->history();
    table.AddRow({algorithm->name(),
                  util::TablePrinter::Fixed(history.BestAccuracy() * 100),
                  util::TablePrinter::Fixed(history.FinalAccuracy() * 100),
                  util::TablePrinter::Fixed(
                      history.records().back().test_loss, 4)});
  }
  std::printf("(chance accuracy: %.1f%%)\n", 100.0 / lstm.num_classes);
  table.Print(stdout);

  // Personalisation gap: accuracy of FedCross's global model on each
  // client's own shard (how well one global model serves skewed roles).
  fl::FlatParams global = fedcross.GlobalParams();
  data::FederatedDataset fresh = data::MakeSyntheticCharLm(text_options);
  std::printf("\nPer-client accuracy of the FedCross global model:\n");
  for (int c = 0; c < std::min(num_clients, 6); ++c) {
    fl::EvalResult eval =
        fl::EvaluateParams(factory, global, *fresh.client_train[c]);
    std::printf("  client %d (n=%d): %.2f%%\n", c,
                fresh.client_train[c]->size(), eval.accuracy * 100);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
