// Quickstart: train a CNN with FedCross (or FedAvg, for comparison) on a
// synthetic CIFAR-10-like federated dataset and watch the global model's
// accuracy per round.
//
//   ./quickstart [--algo fedcross|fedavg] [--rounds 40] [--clients 20]
//                [--k 4] [--beta 0.5] [--alpha 0.9]
//                [--strategy lowest-similarity]
//                [--codec identity|delta|int8|topk|int8_topk] [--topk 0.1]
//                [--exec layers|plan]  (plan = batched execution-plan runtime)
//                [--plan_bf16 false]  (plan mode: bf16 replica arenas,
//                 fp32 compute — halves pooled activation memory)
//                [--population resident|virtual]  (virtual = clients are
//                 materialised on demand; --clients then scales to millions
//                 with flat memory)
//                [--max_resident 0]  (cold client-state entries kept in RAM;
//                 0 = unbounded, excess spills to a mapped file)
//                [--round_mode sync|async]  (async = buffered staleness-
//                 weighted aggregation on the virtual clock)
//                [--buffer 0] [--staleness constant|polynomial]
//                [--staleness_exponent 0.5] [--timeout 0] [--max_retries 1]
//                [--speed_min 100] [--speed_max 100]  (SGD steps / virtual s)
//                [--bw_min 1e9] [--bw_max 1e9]  (wire bytes / virtual s)
//                [--jitter 0]  (per-dispatch compute jitter, 0..j uniform)
//                [--dropout_prob 0] [--straggler_prob 0]
//                [--slowdown_min 2] [--slowdown_max 8] [--round_deadline 0]
//                [--dp_clip 0]  (DP-SGD: clip each update's L2 norm; 0 = off)
//                [--dp_noise 0]  (Gaussian noise multiplier on the clip)
//                [--dp_delta 1e-5]  (delta the RDP accountant reports at)
//                [--secure_agg false]  (pairwise-masked aggregation overlay)
//                [--fl_threads 0]   (0 = all cores, 1 = sequential)
//                [--trace_out t.json] [--metrics_out m.json]
//                [--events_out e.jsonl] [--log_level info]
//
// This is the minimal end-to-end use of the public API:
//   1. build a dataset and partition it across clients,
//   2. pick a model factory,
//   3. construct the server and call Run() — which also streams one
//      structured round event per round when --events_out is set.
#include <cstdio>
#include <memory>

#include "comm/wire.h"
#include "core/fedcross.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "fl/clock.h"
#include "fl/fedavg.h"
#include "models/model_zoo.h"
#include "util/flags.h"
#include "util/mem_stats.h"
#include "util/obs_init.h"

namespace {

int Run(int argc, char** argv) {
  using namespace fedcross;

  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  std::string algo = flags.GetString("algo", "fedcross");
  int rounds = flags.GetInt("rounds", 40);
  int num_clients = flags.GetInt("clients", 20);
  int k = flags.GetInt("k", 4);
  double beta = flags.GetDouble("beta", 0.5);
  double alpha = flags.GetDouble("alpha", 0.9);
  std::string strategy_name =
      flags.GetString("strategy", "lowest-similarity");
  std::string codec_name = flags.GetString("codec", "identity");
  double topk = flags.GetDouble("topk", 0.1);
  std::string exec_name = flags.GetString("exec", "layers");
  bool plan_bf16 = flags.GetBool("plan_bf16", false);
  std::string population_name = flags.GetString("population", "resident");
  int max_resident = flags.GetInt("max_resident", 0);
  std::string round_mode_name = flags.GetString("round_mode", "sync");
  int buffer = flags.GetInt("buffer", 0);
  std::string staleness_name = flags.GetString("staleness", "polynomial");
  double staleness_exponent = flags.GetDouble("staleness_exponent", 0.5);
  double timeout = flags.GetDouble("timeout", 0.0);
  int max_retries = flags.GetInt("max_retries", 1);
  double speed_min = flags.GetDouble("speed_min", 100.0);
  double speed_max = flags.GetDouble("speed_max", 100.0);
  double bw_min = flags.GetDouble("bw_min", 1e9);
  double bw_max = flags.GetDouble("bw_max", 1e9);
  double jitter = flags.GetDouble("jitter", 0.0);
  double dropout_prob = flags.GetDouble("dropout_prob", 0.0);
  double straggler_prob = flags.GetDouble("straggler_prob", 0.0);
  double slowdown_min = flags.GetDouble("slowdown_min", 2.0);
  double slowdown_max = flags.GetDouble("slowdown_max", 8.0);
  double round_deadline = flags.GetDouble("round_deadline", 0.0);
  double dp_clip = flags.GetDouble("dp_clip", 0.0);
  double dp_noise = flags.GetDouble("dp_noise", 0.0);
  double dp_delta = flags.GetDouble("dp_delta", 1e-5);
  bool secure_agg = flags.GetBool("secure_agg", false);
  util::Status obs_status = util::InitObservability(flags);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }
  if (!obs_status.ok()) {
    std::fprintf(stderr, "%s\n", obs_status.ToString().c_str());
    return 1;
  }

  fl::PopulationMode population = fl::PopulationMode::kResident;
  if (!fl::ParsePopulationMode(population_name, &population)) {
    std::fprintf(stderr,
                 "unknown --population '%s' (want resident|virtual)\n",
                 population_name.c_str());
    return 1;
  }

  // 1. Data: a synthetic image corpus. Resident mode Dirichlet-partitions a
  // shared corpus up front (the historical path); virtual mode registers
  // only a shard factory, so any --clients count costs nothing until a
  // client is actually sampled.
  data::SyntheticImageOptions image_options;
  image_options.num_classes = 10;
  image_options.height = image_options.width = 8;
  image_options.train_per_class = 60;
  image_options.test_per_class = 20;

  data::FederatedDataset federated;
  if (population == fl::PopulationMode::kVirtual) {
    data::VirtualImageOptions virtual_options;
    virtual_options.image = image_options;
    virtual_options.num_clients = num_clients;
    if (beta > 0) virtual_options.label_concentration = beta;
    federated = data::MakeVirtualImageFederation(virtual_options);
  } else {
    data::ImageCorpus corpus = data::MakeSyntheticImageCorpus(image_options);
    util::Rng rng(7);
    federated.num_classes = 10;
    federated.client_train = data::MakeClientShards(
        corpus.train,
        beta > 0 ? data::DirichletPartition(*corpus.train, num_clients, beta,
                                            rng)
                 : data::IidPartition(*corpus.train, num_clients, rng));
    federated.test = corpus.test;
  }

  // 2. Model: the FedAvg-style CNN, sized for the 8x8 synthetic images.
  models::CnnConfig cnn;
  cnn.height = cnn.width = 8;
  cnn.num_classes = 10;
  models::ModelFactory factory = models::MakeCnn(cnn);

  // 3. The server. Both algorithms share AlgorithmConfig; FedCross adds its
  // cross-aggregation options.
  fl::AlgorithmConfig config;
  config.clients_per_round = k;
  config.train.local_epochs = 5;
  config.train.batch_size = 20;
  config.train.lr = 0.03f;
  config.train.momentum = 0.5f;
  util::StatusOr<comm::Scheme> scheme = comm::ParseScheme(codec_name);
  if (!scheme.ok()) {
    std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
    return 1;
  }
  config.codec.scheme = scheme.value();
  config.codec.topk_fraction = topk;
  config.population = population;
  config.state_store.max_resident = max_resident;
  if (!fl::ParseExecMode(exec_name, &config.train.exec)) {
    std::fprintf(stderr, "unknown --exec '%s' (want layers|plan)\n",
                 exec_name.c_str());
    return 1;
  }
  config.train.plan_bf16 = plan_bf16;
  if (!fl::ParseRoundMode(round_mode_name, &config.async.mode)) {
    std::fprintf(stderr, "unknown --round_mode '%s' (want sync|async)\n",
                 round_mode_name.c_str());
    return 1;
  }
  if (!fl::ParseStalenessPolicy(staleness_name, &config.async.staleness)) {
    std::fprintf(stderr,
                 "unknown --staleness '%s' (want constant|polynomial)\n",
                 staleness_name.c_str());
    return 1;
  }
  config.async.buffer_size = buffer;
  config.async.staleness_exponent = staleness_exponent;
  config.async.dispatch_timeout = timeout;
  config.async.max_retries = max_retries;
  config.async.clock.compute_speed_min = speed_min;
  config.async.clock.compute_speed_max = speed_max;
  config.async.clock.bandwidth_min = bw_min;
  config.async.clock.bandwidth_max = bw_max;
  config.async.clock.jitter = jitter;
  config.faults.profile.dropout_prob = dropout_prob;
  config.faults.profile.straggler_prob = straggler_prob;
  config.faults.profile.slowdown_min = slowdown_min;
  config.faults.profile.slowdown_max = slowdown_max;
  config.faults.round_deadline = round_deadline;
  config.dp.clip_norm = static_cast<float>(dp_clip);
  config.dp.noise_multiplier = static_cast<float>(dp_noise);
  config.dp.delta = dp_delta;
  config.secure_agg.enabled = secure_agg;

  std::unique_ptr<fl::FlAlgorithm> server;
  if (algo == "fedavg") {
    server = std::make_unique<fl::FedAvg>(config, std::move(federated),
                                          factory);
  } else if (algo == "fedcross") {
    auto strategy = core::ParseSelectionStrategy(strategy_name);
    if (!strategy.ok()) {
      std::fprintf(stderr, "%s\n", strategy.status().ToString().c_str());
      return 1;
    }
    core::FedCrossOptions options;
    options.alpha = alpha;
    options.strategy = strategy.value();
    server = std::make_unique<core::FedCross>(config, std::move(federated),
                                              factory, options);
  } else {
    std::fprintf(stderr, "unknown --algo '%s' (want fedcross|fedavg)\n",
                 algo.c_str());
    return 1;
  }

  std::printf("%s quickstart: %d clients (%s), K=%d, beta=%s, alpha=%.2f"
              ", codec=%s, exec=%s\n",
              server->name().c_str(), num_clients,
              fl::PopulationModeName(population), k,
              beta > 0 ? "non-IID" : "IID", alpha,
              comm::SchemeName(config.codec.scheme),
              fl::ExecModeName(config.train.exec));
  std::printf("model: %s\n", factory().Summary().c_str());
  // Engine lines appear only when the virtual-clock engine can change the
  // run, so a default (sync, homogeneous, fault-free) invocation's stdout
  // stays byte-identical to pre-engine builds.
  const bool engine_active = config.async.mode == fl::RoundMode::kAsync ||
                             config.async.clock.Heterogeneous() ||
                             config.faults.AnyActive();
  if (engine_active) {
    std::printf("engine: %s, buffer=%d, staleness=%s(a=%.2f), timeout=%g"
                ", retries=%d, deadline=%g\n",
                fl::RoundModeName(config.async.mode), config.async.buffer_size,
                fl::StalenessPolicyName(config.async.staleness),
                config.async.staleness_exponent, config.async.dispatch_timeout,
                config.async.max_retries, config.faults.round_deadline);
  }
  // Privacy line, same convention: only printed when the subsystem can
  // change the run, keeping default stdout byte-identical to older builds.
  const bool privacy_active =
      config.dp.Enabled() || config.secure_agg.Enabled();
  if (privacy_active) {
    std::printf("privacy: clip=%g, noise=%g, delta=%g, secure_agg=%s\n",
                static_cast<double>(config.dp.clip_norm),
                static_cast<double>(config.dp.noise_multiplier),
                config.dp.delta, config.secure_agg.Enabled() ? "on" : "off");
  }

  // Run() drives the rounds, evaluates every 5th, and feeds every enabled
  // observability sink. The history replays the eval cadence below.
  const fl::MetricsHistory& history = server->Run(rounds, /*eval_every=*/5);
  for (const fl::RoundRecord& record : history.records()) {
    std::printf("round %3d  accuracy %.2f%%  loss %.4f\n", record.round,
                record.test_accuracy * 100, record.test_loss);
  }
  if (engine_active) {
    // Virtual time is a pure function of the run config, so this line is
    // part of the thread-count determinism surface too.
    std::printf("virtual time %.6f s over %lld aggregations"
                ", %lld uploads still in flight\n",
                server->virtual_now(),
                static_cast<long long>(server->model_version()),
                static_cast<long long>(server->inflight_dispatches()));
  }
  if (privacy_active) {
    // Epsilon is a pure function of (q, sigma, rounds), so this line rides
    // the thread-count determinism surface as well.
    const fl::PrivacyStats& privacy = server->privacy_stats();
    std::printf("privacy spent: epsilon=%.6g at delta=%g"
                ", clipped=%lld, mask_pairs=%lld, mask_recoveries=%lld\n",
                server->privacy_epsilon(), config.dp.delta,
                static_cast<long long>(privacy.clipped),
                static_cast<long long>(privacy.mask_pairs),
                static_cast<long long>(privacy.mask_recoveries));
  }
  // stderr: peak RSS varies with --fl_threads (more replicas), and stdout
  // must stay byte-identical across thread counts (the determinism check).
  std::fprintf(
      stderr, "resident clients: %lld of %lld registered, peak RSS %.1f MiB\n",
      static_cast<long long>(server->population().resident_clients()),
      static_cast<long long>(server->num_clients()),
      static_cast<double>(util::PeakRssBytes()) / (1024.0 * 1024.0));

  util::Status flushed = util::FlushObservability();
  if (!flushed.ok()) {
    std::fprintf(stderr, "%s\n", flushed.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
