// Scenario: inspect *why* FedCross generalises — train FedAvg and FedCross
// side by side, then probe the loss landscape around each global model
// (filter-normalised 2-D surface, as in the paper's Fig. 4) and print both
// an ASCII heat map and sharpness numbers.
//
//   ./landscape_explorer [--rounds 40] [--grid 9] [--radius 0.8]
#include <cstdio>
#include <memory>
#include <string>

#include "core/fedcross.h"
#include "core/landscape.h"
#include "data/partition.h"
#include "data/synthetic_image.h"
#include "fl/fedavg.h"
#include "models/model_zoo.h"
#include "util/flags.h"

namespace {

using namespace fedcross;

// Renders the loss grid as ASCII shades, low loss = '.', high = '#'.
void PrintAscii(const core::LandscapeResult& landscape) {
  double lo = landscape.loss[0][0];
  double hi = lo;
  for (const auto& row : landscape.loss) {
    for (double value : row) {
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
  }
  const char* shades = " .:-=+*#%@";
  for (const auto& row : landscape.loss) {
    std::string line;
    for (double value : row) {
      int level = hi > lo ? static_cast<int>((value - lo) / (hi - lo) * 9.0)
                          : 0;
      line += shades[level];
      line += shades[level];
    }
    std::printf("    %s\n", line.c_str());
  }
}

int Run(int argc, char** argv) {
  util::FlagParser flags(argc, argv);
  fl::SetFlThreads(flags.GetInt("fl_threads", 0));
  int rounds = flags.GetInt("rounds", 40);
  int grid = flags.GetInt("grid", 9);
  double radius = flags.GetDouble("radius", 0.8);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 1;
  }

  data::SyntheticImageOptions image_options;
  image_options.num_classes = 10;
  image_options.height = image_options.width = 8;
  image_options.train_per_class = 60;
  image_options.test_per_class = 20;
  data::ImageCorpus corpus = data::MakeSyntheticImageCorpus(image_options);

  auto make_data = [&]() {
    util::Rng rng(5);
    data::FederatedDataset federated;
    federated.num_classes = 10;
    federated.client_train = data::MakeClientShards(
        corpus.train, data::DirichletPartition(*corpus.train, 20, 0.1, rng));
    federated.test = corpus.test;
    return federated;
  };

  models::ResNetConfig resnet;
  resnet.height = resnet.width = 8;
  resnet.num_classes = 10;
  resnet.base_width = 6;
  resnet.gn_groups = 2;
  models::ModelFactory factory = models::MakeResNet(resnet);

  fl::AlgorithmConfig config;
  config.clients_per_round = 4;
  config.train.local_epochs = 5;
  config.train.batch_size = 20;
  config.train.lr = 0.03f;
  config.train.momentum = 0.5f;

  core::LandscapeOptions landscape_options;
  landscape_options.grid = grid;
  landscape_options.radius = radius;
  landscape_options.max_examples = 120;

  for (const std::string& method : {"FedAvg", "FedCross"}) {
    std::unique_ptr<fl::FlAlgorithm> algorithm;
    if (method == "FedAvg") {
      algorithm = std::make_unique<fl::FedAvg>(config, make_data(), factory);
    } else {
      core::FedCrossOptions options;
      options.alpha = 0.9;
      algorithm = std::make_unique<core::FedCross>(config, make_data(),
                                                   factory, options);
    }
    algorithm->Run(rounds, rounds);
    fl::FlatParams params = algorithm->GlobalParams();
    core::LandscapeResult landscape = core::ProbeLossLandscape(
        factory, params, algorithm->test_set(), landscape_options);

    std::printf("\n%s after %d rounds — accuracy %.2f%%\n", method.c_str(),
                rounds,
                algorithm->history().BestAccuracy() * 100);
    std::printf("  loss surface (radius %.2f, filter-normalised):\n", radius);
    PrintAscii(landscape);
    std::printf("  center loss %.4f | border sharpness %.4f | max increase "
                "%.4f\n",
                landscape.center_loss, landscape.border_sharpness,
                landscape.max_increase);
  }
  std::printf("\nFlatter surface (smaller sharpness) = better-generalising "
              "minimum; the paper's Fig. 4 claim is that FedCross lands in "
              "the flatter valley.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
