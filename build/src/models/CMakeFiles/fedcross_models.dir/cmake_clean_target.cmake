file(REMOVE_RECURSE
  "libfedcross_models.a"
)
