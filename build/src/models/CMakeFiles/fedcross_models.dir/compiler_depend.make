# Empty compiler generated dependencies file for fedcross_models.
# This may be replaced when dependencies are built.
