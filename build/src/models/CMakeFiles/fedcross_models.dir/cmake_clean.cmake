file(REMOVE_RECURSE
  "CMakeFiles/fedcross_models.dir/model_zoo.cc.o"
  "CMakeFiles/fedcross_models.dir/model_zoo.cc.o.d"
  "libfedcross_models.a"
  "libfedcross_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcross_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
