# Empty dependencies file for fedcross_util.
# This may be replaced when dependencies are built.
