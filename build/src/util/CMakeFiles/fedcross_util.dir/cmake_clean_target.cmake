file(REMOVE_RECURSE
  "libfedcross_util.a"
)
