file(REMOVE_RECURSE
  "CMakeFiles/fedcross_util.dir/csv_writer.cc.o"
  "CMakeFiles/fedcross_util.dir/csv_writer.cc.o.d"
  "CMakeFiles/fedcross_util.dir/flags.cc.o"
  "CMakeFiles/fedcross_util.dir/flags.cc.o.d"
  "CMakeFiles/fedcross_util.dir/logging.cc.o"
  "CMakeFiles/fedcross_util.dir/logging.cc.o.d"
  "CMakeFiles/fedcross_util.dir/rng.cc.o"
  "CMakeFiles/fedcross_util.dir/rng.cc.o.d"
  "CMakeFiles/fedcross_util.dir/status.cc.o"
  "CMakeFiles/fedcross_util.dir/status.cc.o.d"
  "CMakeFiles/fedcross_util.dir/table_printer.cc.o"
  "CMakeFiles/fedcross_util.dir/table_printer.cc.o.d"
  "CMakeFiles/fedcross_util.dir/thread_pool.cc.o"
  "CMakeFiles/fedcross_util.dir/thread_pool.cc.o.d"
  "libfedcross_util.a"
  "libfedcross_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcross_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
