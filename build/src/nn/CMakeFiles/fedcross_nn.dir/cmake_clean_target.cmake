file(REMOVE_RECURSE
  "libfedcross_nn.a"
)
