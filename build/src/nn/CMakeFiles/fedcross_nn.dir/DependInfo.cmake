
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/nn/CMakeFiles/fedcross_nn.dir/activations.cc.o" "gcc" "src/nn/CMakeFiles/fedcross_nn.dir/activations.cc.o.d"
  "/root/repo/src/nn/checkpoint.cc" "src/nn/CMakeFiles/fedcross_nn.dir/checkpoint.cc.o" "gcc" "src/nn/CMakeFiles/fedcross_nn.dir/checkpoint.cc.o.d"
  "/root/repo/src/nn/conv2d.cc" "src/nn/CMakeFiles/fedcross_nn.dir/conv2d.cc.o" "gcc" "src/nn/CMakeFiles/fedcross_nn.dir/conv2d.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/nn/CMakeFiles/fedcross_nn.dir/dropout.cc.o" "gcc" "src/nn/CMakeFiles/fedcross_nn.dir/dropout.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/fedcross_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/fedcross_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/flatten.cc" "src/nn/CMakeFiles/fedcross_nn.dir/flatten.cc.o" "gcc" "src/nn/CMakeFiles/fedcross_nn.dir/flatten.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/fedcross_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/fedcross_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/fedcross_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/fedcross_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/fedcross_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/fedcross_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/fedcross_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/fedcross_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/norm.cc" "src/nn/CMakeFiles/fedcross_nn.dir/norm.cc.o" "gcc" "src/nn/CMakeFiles/fedcross_nn.dir/norm.cc.o.d"
  "/root/repo/src/nn/pooling.cc" "src/nn/CMakeFiles/fedcross_nn.dir/pooling.cc.o" "gcc" "src/nn/CMakeFiles/fedcross_nn.dir/pooling.cc.o.d"
  "/root/repo/src/nn/residual.cc" "src/nn/CMakeFiles/fedcross_nn.dir/residual.cc.o" "gcc" "src/nn/CMakeFiles/fedcross_nn.dir/residual.cc.o.d"
  "/root/repo/src/nn/sequential.cc" "src/nn/CMakeFiles/fedcross_nn.dir/sequential.cc.o" "gcc" "src/nn/CMakeFiles/fedcross_nn.dir/sequential.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fedcross_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedcross_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
