file(REMOVE_RECURSE
  "CMakeFiles/fedcross_nn.dir/activations.cc.o"
  "CMakeFiles/fedcross_nn.dir/activations.cc.o.d"
  "CMakeFiles/fedcross_nn.dir/checkpoint.cc.o"
  "CMakeFiles/fedcross_nn.dir/checkpoint.cc.o.d"
  "CMakeFiles/fedcross_nn.dir/conv2d.cc.o"
  "CMakeFiles/fedcross_nn.dir/conv2d.cc.o.d"
  "CMakeFiles/fedcross_nn.dir/dropout.cc.o"
  "CMakeFiles/fedcross_nn.dir/dropout.cc.o.d"
  "CMakeFiles/fedcross_nn.dir/embedding.cc.o"
  "CMakeFiles/fedcross_nn.dir/embedding.cc.o.d"
  "CMakeFiles/fedcross_nn.dir/flatten.cc.o"
  "CMakeFiles/fedcross_nn.dir/flatten.cc.o.d"
  "CMakeFiles/fedcross_nn.dir/init.cc.o"
  "CMakeFiles/fedcross_nn.dir/init.cc.o.d"
  "CMakeFiles/fedcross_nn.dir/linear.cc.o"
  "CMakeFiles/fedcross_nn.dir/linear.cc.o.d"
  "CMakeFiles/fedcross_nn.dir/loss.cc.o"
  "CMakeFiles/fedcross_nn.dir/loss.cc.o.d"
  "CMakeFiles/fedcross_nn.dir/lstm.cc.o"
  "CMakeFiles/fedcross_nn.dir/lstm.cc.o.d"
  "CMakeFiles/fedcross_nn.dir/norm.cc.o"
  "CMakeFiles/fedcross_nn.dir/norm.cc.o.d"
  "CMakeFiles/fedcross_nn.dir/pooling.cc.o"
  "CMakeFiles/fedcross_nn.dir/pooling.cc.o.d"
  "CMakeFiles/fedcross_nn.dir/residual.cc.o"
  "CMakeFiles/fedcross_nn.dir/residual.cc.o.d"
  "CMakeFiles/fedcross_nn.dir/sequential.cc.o"
  "CMakeFiles/fedcross_nn.dir/sequential.cc.o.d"
  "libfedcross_nn.a"
  "libfedcross_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcross_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
