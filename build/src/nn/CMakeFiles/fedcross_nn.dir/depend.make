# Empty dependencies file for fedcross_nn.
# This may be replaced when dependencies are built.
