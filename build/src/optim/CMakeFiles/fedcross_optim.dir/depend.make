# Empty dependencies file for fedcross_optim.
# This may be replaced when dependencies are built.
