file(REMOVE_RECURSE
  "CMakeFiles/fedcross_optim.dir/adam.cc.o"
  "CMakeFiles/fedcross_optim.dir/adam.cc.o.d"
  "CMakeFiles/fedcross_optim.dir/schedule.cc.o"
  "CMakeFiles/fedcross_optim.dir/schedule.cc.o.d"
  "CMakeFiles/fedcross_optim.dir/sgd.cc.o"
  "CMakeFiles/fedcross_optim.dir/sgd.cc.o.d"
  "libfedcross_optim.a"
  "libfedcross_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcross_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
