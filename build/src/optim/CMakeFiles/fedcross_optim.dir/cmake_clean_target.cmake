file(REMOVE_RECURSE
  "libfedcross_optim.a"
)
