# Empty dependencies file for fedcross_tensor.
# This may be replaced when dependencies are built.
