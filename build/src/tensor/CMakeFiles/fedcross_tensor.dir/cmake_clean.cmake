file(REMOVE_RECURSE
  "CMakeFiles/fedcross_tensor.dir/tensor.cc.o"
  "CMakeFiles/fedcross_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/fedcross_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/fedcross_tensor.dir/tensor_ops.cc.o.d"
  "libfedcross_tensor.a"
  "libfedcross_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcross_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
