file(REMOVE_RECURSE
  "libfedcross_tensor.a"
)
