file(REMOVE_RECURSE
  "CMakeFiles/fedcross_fl.dir/algorithm.cc.o"
  "CMakeFiles/fedcross_fl.dir/algorithm.cc.o.d"
  "CMakeFiles/fedcross_fl.dir/client.cc.o"
  "CMakeFiles/fedcross_fl.dir/client.cc.o.d"
  "CMakeFiles/fedcross_fl.dir/clusamp.cc.o"
  "CMakeFiles/fedcross_fl.dir/clusamp.cc.o.d"
  "CMakeFiles/fedcross_fl.dir/evaluator.cc.o"
  "CMakeFiles/fedcross_fl.dir/evaluator.cc.o.d"
  "CMakeFiles/fedcross_fl.dir/fedavg.cc.o"
  "CMakeFiles/fedcross_fl.dir/fedavg.cc.o.d"
  "CMakeFiles/fedcross_fl.dir/fedcluster.cc.o"
  "CMakeFiles/fedcross_fl.dir/fedcluster.cc.o.d"
  "CMakeFiles/fedcross_fl.dir/fedgen.cc.o"
  "CMakeFiles/fedcross_fl.dir/fedgen.cc.o.d"
  "CMakeFiles/fedcross_fl.dir/history.cc.o"
  "CMakeFiles/fedcross_fl.dir/history.cc.o.d"
  "CMakeFiles/fedcross_fl.dir/privacy.cc.o"
  "CMakeFiles/fedcross_fl.dir/privacy.cc.o.d"
  "CMakeFiles/fedcross_fl.dir/scaffold.cc.o"
  "CMakeFiles/fedcross_fl.dir/scaffold.cc.o.d"
  "libfedcross_fl.a"
  "libfedcross_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcross_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
