file(REMOVE_RECURSE
  "libfedcross_fl.a"
)
