# Empty compiler generated dependencies file for fedcross_fl.
# This may be replaced when dependencies are built.
