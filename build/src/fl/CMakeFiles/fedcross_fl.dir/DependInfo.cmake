
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/algorithm.cc" "src/fl/CMakeFiles/fedcross_fl.dir/algorithm.cc.o" "gcc" "src/fl/CMakeFiles/fedcross_fl.dir/algorithm.cc.o.d"
  "/root/repo/src/fl/client.cc" "src/fl/CMakeFiles/fedcross_fl.dir/client.cc.o" "gcc" "src/fl/CMakeFiles/fedcross_fl.dir/client.cc.o.d"
  "/root/repo/src/fl/clusamp.cc" "src/fl/CMakeFiles/fedcross_fl.dir/clusamp.cc.o" "gcc" "src/fl/CMakeFiles/fedcross_fl.dir/clusamp.cc.o.d"
  "/root/repo/src/fl/evaluator.cc" "src/fl/CMakeFiles/fedcross_fl.dir/evaluator.cc.o" "gcc" "src/fl/CMakeFiles/fedcross_fl.dir/evaluator.cc.o.d"
  "/root/repo/src/fl/fedavg.cc" "src/fl/CMakeFiles/fedcross_fl.dir/fedavg.cc.o" "gcc" "src/fl/CMakeFiles/fedcross_fl.dir/fedavg.cc.o.d"
  "/root/repo/src/fl/fedcluster.cc" "src/fl/CMakeFiles/fedcross_fl.dir/fedcluster.cc.o" "gcc" "src/fl/CMakeFiles/fedcross_fl.dir/fedcluster.cc.o.d"
  "/root/repo/src/fl/fedgen.cc" "src/fl/CMakeFiles/fedcross_fl.dir/fedgen.cc.o" "gcc" "src/fl/CMakeFiles/fedcross_fl.dir/fedgen.cc.o.d"
  "/root/repo/src/fl/history.cc" "src/fl/CMakeFiles/fedcross_fl.dir/history.cc.o" "gcc" "src/fl/CMakeFiles/fedcross_fl.dir/history.cc.o.d"
  "/root/repo/src/fl/privacy.cc" "src/fl/CMakeFiles/fedcross_fl.dir/privacy.cc.o" "gcc" "src/fl/CMakeFiles/fedcross_fl.dir/privacy.cc.o.d"
  "/root/repo/src/fl/scaffold.cc" "src/fl/CMakeFiles/fedcross_fl.dir/scaffold.cc.o" "gcc" "src/fl/CMakeFiles/fedcross_fl.dir/scaffold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/fedcross_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/fedcross_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedcross_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/fedcross_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedcross_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedcross_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
