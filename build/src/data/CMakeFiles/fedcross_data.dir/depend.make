# Empty dependencies file for fedcross_data.
# This may be replaced when dependencies are built.
