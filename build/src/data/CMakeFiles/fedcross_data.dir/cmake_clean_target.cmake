file(REMOVE_RECURSE
  "libfedcross_data.a"
)
