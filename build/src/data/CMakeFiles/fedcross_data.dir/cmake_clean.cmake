file(REMOVE_RECURSE
  "CMakeFiles/fedcross_data.dir/dataloader.cc.o"
  "CMakeFiles/fedcross_data.dir/dataloader.cc.o.d"
  "CMakeFiles/fedcross_data.dir/dataset.cc.o"
  "CMakeFiles/fedcross_data.dir/dataset.cc.o.d"
  "CMakeFiles/fedcross_data.dir/partition.cc.o"
  "CMakeFiles/fedcross_data.dir/partition.cc.o.d"
  "CMakeFiles/fedcross_data.dir/synthetic_image.cc.o"
  "CMakeFiles/fedcross_data.dir/synthetic_image.cc.o.d"
  "CMakeFiles/fedcross_data.dir/synthetic_text.cc.o"
  "CMakeFiles/fedcross_data.dir/synthetic_text.cc.o.d"
  "libfedcross_data.a"
  "libfedcross_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcross_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
