file(REMOVE_RECURSE
  "libfedcross_core.a"
)
