# Empty dependencies file for fedcross_core.
# This may be replaced when dependencies are built.
