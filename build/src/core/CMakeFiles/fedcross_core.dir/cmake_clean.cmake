file(REMOVE_RECURSE
  "CMakeFiles/fedcross_core.dir/fedcross.cc.o"
  "CMakeFiles/fedcross_core.dir/fedcross.cc.o.d"
  "CMakeFiles/fedcross_core.dir/landscape.cc.o"
  "CMakeFiles/fedcross_core.dir/landscape.cc.o.d"
  "CMakeFiles/fedcross_core.dir/quadratic.cc.o"
  "CMakeFiles/fedcross_core.dir/quadratic.cc.o.d"
  "libfedcross_core.a"
  "libfedcross_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcross_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
