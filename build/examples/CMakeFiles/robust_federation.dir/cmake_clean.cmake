file(REMOVE_RECURSE
  "CMakeFiles/robust_federation.dir/robust_federation.cc.o"
  "CMakeFiles/robust_federation.dir/robust_federation.cc.o.d"
  "robust_federation"
  "robust_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
