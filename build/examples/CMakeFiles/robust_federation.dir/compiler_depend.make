# Empty compiler generated dependencies file for robust_federation.
# This may be replaced when dependencies are built.
