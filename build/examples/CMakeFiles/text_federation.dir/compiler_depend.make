# Empty compiler generated dependencies file for text_federation.
# This may be replaced when dependencies are built.
