file(REMOVE_RECURSE
  "CMakeFiles/text_federation.dir/text_federation.cc.o"
  "CMakeFiles/text_federation.dir/text_federation.cc.o.d"
  "text_federation"
  "text_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
