# Empty compiler generated dependencies file for landscape_explorer.
# This may be replaced when dependencies are built.
