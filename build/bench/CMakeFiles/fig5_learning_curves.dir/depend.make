# Empty dependencies file for fig5_learning_curves.
# This may be replaced when dependencies are built.
