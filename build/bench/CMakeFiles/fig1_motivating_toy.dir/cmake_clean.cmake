file(REMOVE_RECURSE
  "CMakeFiles/fig1_motivating_toy.dir/fig1_motivating_toy.cc.o"
  "CMakeFiles/fig1_motivating_toy.dir/fig1_motivating_toy.cc.o.d"
  "fig1_motivating_toy"
  "fig1_motivating_toy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_motivating_toy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
