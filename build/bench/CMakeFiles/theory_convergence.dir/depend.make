# Empty dependencies file for theory_convergence.
# This may be replaced when dependencies are built.
