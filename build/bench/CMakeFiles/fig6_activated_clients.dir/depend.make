# Empty dependencies file for fig6_activated_clients.
# This may be replaced when dependencies are built.
