file(REMOVE_RECURSE
  "CMakeFiles/fig7_total_clients.dir/fig7_total_clients.cc.o"
  "CMakeFiles/fig7_total_clients.dir/fig7_total_clients.cc.o.d"
  "fig7_total_clients"
  "fig7_total_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_total_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
