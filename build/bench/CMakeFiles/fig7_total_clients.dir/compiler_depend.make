# Empty compiler generated dependencies file for fig7_total_clients.
# This may be replaced when dependencies are built.
