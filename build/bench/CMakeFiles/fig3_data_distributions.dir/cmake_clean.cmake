file(REMOVE_RECURSE
  "CMakeFiles/fig3_data_distributions.dir/fig3_data_distributions.cc.o"
  "CMakeFiles/fig3_data_distributions.dir/fig3_data_distributions.cc.o.d"
  "fig3_data_distributions"
  "fig3_data_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_data_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
