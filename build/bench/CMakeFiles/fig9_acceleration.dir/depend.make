# Empty dependencies file for fig9_acceleration.
# This may be replaced when dependencies are built.
