file(REMOVE_RECURSE
  "CMakeFiles/fig9_acceleration.dir/fig9_acceleration.cc.o"
  "CMakeFiles/fig9_acceleration.dir/fig9_acceleration.cc.o.d"
  "fig9_acceleration"
  "fig9_acceleration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_acceleration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
