file(REMOVE_RECURSE
  "libfedcross_bench_common.a"
)
