# Empty dependencies file for fedcross_bench_common.
# This may be replaced when dependencies are built.
