file(REMOVE_RECURSE
  "CMakeFiles/fedcross_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/fedcross_bench_common.dir/bench_common.cc.o.d"
  "libfedcross_bench_common.a"
  "libfedcross_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcross_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
