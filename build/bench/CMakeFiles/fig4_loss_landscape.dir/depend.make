# Empty dependencies file for fig4_loss_landscape.
# This may be replaced when dependencies are built.
