file(REMOVE_RECURSE
  "CMakeFiles/fig4_loss_landscape.dir/fig4_loss_landscape.cc.o"
  "CMakeFiles/fig4_loss_landscape.dir/fig4_loss_landscape.cc.o.d"
  "fig4_loss_landscape"
  "fig4_loss_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_loss_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
