# Empty dependencies file for fig8_alpha_curves.
# This may be replaced when dependencies are built.
