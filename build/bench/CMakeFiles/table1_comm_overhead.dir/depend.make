# Empty dependencies file for table1_comm_overhead.
# This may be replaced when dependencies are built.
