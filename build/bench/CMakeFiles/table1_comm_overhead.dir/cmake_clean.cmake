file(REMOVE_RECURSE
  "CMakeFiles/table1_comm_overhead.dir/table1_comm_overhead.cc.o"
  "CMakeFiles/table1_comm_overhead.dir/table1_comm_overhead.cc.o.d"
  "table1_comm_overhead"
  "table1_comm_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_comm_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
