file(REMOVE_RECURSE
  "CMakeFiles/table3_alpha_selection.dir/table3_alpha_selection.cc.o"
  "CMakeFiles/table3_alpha_selection.dir/table3_alpha_selection.cc.o.d"
  "table3_alpha_selection"
  "table3_alpha_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_alpha_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
