# Empty compiler generated dependencies file for quadratic_test.
# This may be replaced when dependencies are built.
