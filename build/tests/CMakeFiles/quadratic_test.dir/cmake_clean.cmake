file(REMOVE_RECURSE
  "CMakeFiles/quadratic_test.dir/quadratic_test.cc.o"
  "CMakeFiles/quadratic_test.dir/quadratic_test.cc.o.d"
  "quadratic_test"
  "quadratic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quadratic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
