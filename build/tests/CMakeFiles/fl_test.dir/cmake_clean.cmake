file(REMOVE_RECURSE
  "CMakeFiles/fl_test.dir/fl_test.cc.o"
  "CMakeFiles/fl_test.dir/fl_test.cc.o.d"
  "fl_test"
  "fl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
