# Empty dependencies file for fedcross_test.
# This may be replaced when dependencies are built.
