file(REMOVE_RECURSE
  "CMakeFiles/fedcross_test.dir/fedcross_test.cc.o"
  "CMakeFiles/fedcross_test.dir/fedcross_test.cc.o.d"
  "fedcross_test"
  "fedcross_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcross_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
