file(REMOVE_RECURSE
  "CMakeFiles/landscape_test.dir/landscape_test.cc.o"
  "CMakeFiles/landscape_test.dir/landscape_test.cc.o.d"
  "landscape_test"
  "landscape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landscape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
