# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;fedcross_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tensor_test "/root/repo/build/tests/tensor_test")
set_tests_properties(tensor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;13;fedcross_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gradcheck_test "/root/repo/build/tests/gradcheck_test")
set_tests_properties(gradcheck_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;14;fedcross_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;fedcross_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(optim_test "/root/repo/build/tests/optim_test")
set_tests_properties(optim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;16;fedcross_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(data_test "/root/repo/build/tests/data_test")
set_tests_properties(data_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;17;fedcross_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(models_test "/root/repo/build/tests/models_test")
set_tests_properties(models_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;fedcross_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fl_test "/root/repo/build/tests/fl_test")
set_tests_properties(fl_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;fedcross_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fedcross_test "/root/repo/build/tests/fedcross_test")
set_tests_properties(fedcross_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;20;fedcross_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(landscape_test "/root/repo/build/tests/landscape_test")
set_tests_properties(landscape_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;fedcross_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(quadratic_test "/root/repo/build/tests/quadratic_test")
set_tests_properties(quadratic_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;fedcross_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;23;fedcross_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;24;fedcross_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;25;fedcross_test;/root/repo/tests/CMakeLists.txt;0;")
