#!/bin/bash
# Runs the full benchmark suite (paper figures/tables plus the micro
# benchmarks) and tees everything into bench_output.txt. The bench
# executables are listed explicitly so CMake artifacts under build/bench
# (e.g. the CMakeFiles directory) never sneak into the run, and so
# micro_ops — which carries the GEMM, round, codec, observability and
# execution-plan benches — is always included.
cd /root/repo

benches=(
  fig1_motivating_toy
  fig3_data_distributions
  fig4_loss_landscape
  fig5_learning_curves
  fig6_activated_clients
  fig7_total_clients
  fig8_alpha_curves
  fig9_acceleration
  table1_comm_overhead
  table2_accuracy
  table3_alpha_selection
  table_privacy
  theory_convergence
  micro_ops
)

{
  for b in "${benches[@]}"; do
    bin="build/bench/${b}"
    if [[ -x "${bin}" ]]; then
      echo "=== ${b} ==="
      "${bin}"
    else
      echo "=== ${b} (missing: ${bin} — build first) ==="
    fi
  done
} 2>&1 | tee /root/repo/bench_output.txt
echo "BENCH_SUITE_DONE" >> /root/repo/bench_output.txt
