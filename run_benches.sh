#!/bin/bash
cd /root/repo
for b in build/bench/*; do $b; done 2>&1 | tee /root/repo/bench_output.txt
echo "BENCH_SUITE_DONE" >> /root/repo/bench_output.txt
