#!/usr/bin/env bash
# Runs the micro benchmarks and writes the results as JSON so the perf
# trajectory can be tracked across PRs:
#
#   BENCH_gemm.json    BM_Gemm/{32..512}  (blocked GEMM kernel)
#   BENCH_round.json   BM_FedRound/{1,2,4} (parallel client training)
#   BENCH_eval.json    BM_Evaluate/{1,2,4} (pooled parallel evaluation)
#   BENCH_robust.json  BM_FedRoundRobust/{1,2,4} (faults + screening +
#                      trimmed-mean aggregation; delta vs BENCH_round is
#                      the overhead of the resilience stack)
#   BENCH_async.json   BM_FedRoundAsync/{1,2,4} (buffered-async engine on a
#                      heterogeneous virtual clock with timeouts + retries;
#                      delta vs BENCH_round is the engine overhead)
#   BENCH_obs.json     BM_FedRoundObs/{1,2,4} (metrics + tracing + round
#                      events all enabled; delta vs BENCH_round is the
#                      observability overhead, budgeted at <= 5%)
#   BENCH_comm.json    BM_Encode/BM_Decode per wire-codec scheme (identity,
#                      delta, int8, topk, int8_topk); bytes_per_second is
#                      raw payload throughput through the codec
#   BENCH_plan.json    BM_FedCrossRound{,ResNet,Lstm}/{K,plan} (full
#                      FedCross round sweeping middleware-model count K at
#                      both execution backends, for the MLP, ResNet and
#                      Embedding+LSTM topologies; the plan:1 vs plan:0
#                      delta at fixed K is the batched-executor speedup)
#                      plus BM_GemmGrouped/BM_GemmSmallLooped and
#                      BM_ConvGrouped/BM_ConvSmallLooped (the cross-replica
#                      fusion primitives vs per-replica dispatch)
#   BENCH_scale.json   BM_FedRoundScale/{1k..1M} (one FedAvg round against a
#                      lazily materialised virtual population; wall time
#                      should be flat in registered N and the peak_rss_mb
#                      counter tracks participation, not N)
#   BENCH_privacy.json BM_SanitizeUpdate/{4,16,64} (DP-SGD clip + Gaussian
#                      noise over a KB-scale update; bytes_per_second is
#                      sanitisation throughput) and BM_MaskedSum/{4,16,64}
#                      (fixed-point masked aggregation for an 8-client
#                      cohort with one dropout, including mask recovery)
#
# Usage: scripts/bench_to_json.sh [build_dir] [output_dir]
# Defaults: build_dir=build, output_dir=. — run from the repo root.
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-.}"
bench_bin="${build_dir}/bench/micro_ops"

if [[ ! -x "${bench_bin}" ]]; then
  echo "error: ${bench_bin} not found; build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

mkdir -p "${out_dir}"

min_time="${BENCH_MIN_TIME:-0.2}"

run_filter() {
  # google-benchmark's JSON goes to the --benchmark_out file; console output
  # stays on stderr for progress.
  local filter="$1" out_file="$2"
  "${bench_bin}" \
    --benchmark_filter="${filter}" \
    --benchmark_min_time="${min_time}" \
    --benchmark_out="${out_file}" \
    --benchmark_out_format=json 1>&2
  echo "wrote ${out_file}" >&2
}

run_filter '^BM_Gemm/' "${out_dir}/BENCH_gemm.json"
run_filter '^BM_FedRound/' "${out_dir}/BENCH_round.json"
run_filter '^BM_Evaluate/' "${out_dir}/BENCH_eval.json"
run_filter '^BM_FedRoundRobust/' "${out_dir}/BENCH_robust.json"
run_filter '^BM_FedRoundAsync/' "${out_dir}/BENCH_async.json"
run_filter '^BM_FedRoundObs/' "${out_dir}/BENCH_obs.json"
run_filter '^BM_(Encode|Decode)/' "${out_dir}/BENCH_comm.json"
run_filter '^BM_(FedCrossRound(ResNet|Lstm)?|GemmGrouped|GemmSmallLooped|ConvGrouped|ConvSmallLooped)/' "${out_dir}/BENCH_plan.json"
run_filter '^BM_FedRoundScale/' "${out_dir}/BENCH_scale.json"
run_filter '^BM_(SanitizeUpdate|MaskedSum)/' "${out_dir}/BENCH_privacy.json"
