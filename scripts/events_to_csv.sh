#!/usr/bin/env bash
# Renders a round-event JSONL file (written via --events_out) as CSV, plus a
# readable per-round phase-time table on stderr — the table used in
# EXPERIMENTS.md §"Phase breakdown". Pure awk over the flat one-line-per-
# record format; no JSON tooling required.
#
# Usage: scripts/events_to_csv.sh events.jsonl [> events.csv]
set -euo pipefail

if [[ $# -lt 1 || ! -f "$1" ]]; then
  echo "usage: $0 events.jsonl" >&2
  exit 1
fi

awk '
# Extract a numeric / string value for `key` from the flat JSON line.
function nval(line, key,   m) {
  if (match(line, "\"" key "\":[-+0-9.eE]+")) {
    m = substr(line, RSTART, RLENGTH)
    sub("\"" key "\":", "", m)
    return m + 0
  }
  return 0
}
function sval(line, key,   m) {
  if (match(line, "\"" key "\":\"[^\"]*\"")) {
    m = substr(line, RSTART, RLENGTH)
    sub("\"" key "\":\"", "", m)
    sub("\"$", "", m)
    return m
  }
  return ""
}
BEGIN {
  print "algo,round,round_ms,dispatch_ms,train_ms,screen_ms,aggregate_ms," \
        "eval_ms,checkpoint_ms,test_accuracy,test_loss,bytes_down," \
        "bytes_up,wire_bytes_down,wire_bytes_up,wire_bytes_wasted," \
        "dropouts,stragglers,corrupted,rejected,timeouts,async_retries," \
        "virtual_time,model_version,inflight,staleness_mean,staleness_max," \
        "resident_clients,peak_rss_bytes,dp_epsilon,dp_clipped,mask_pairs," \
        "mask_recoveries"
  printf "%-10s %5s %9s %9s %9s %9s %9s %9s %9s %7s\n", \
         "algo", "round", "round_ms", "dispatch", "train", "screen", \
         "aggregate", "eval", "ckpt", "up_cmp" > "/dev/stderr"
}
/"round":/ {
  algo = sval($0, "algo")
  round = nval($0, "round")
  # Measured upload compression: raw payload bytes over encoded wire bytes.
  wire_up = nval($0, "wire_bytes_up")
  ratio = wire_up > 0 ? nval($0, "bytes_up") / wire_up : 1
  printf "%s,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.9g,%.9g,%.0f,%.0f,%.0f,%.0f,%.0f,%d,%d,%d,%d,%d,%d,%.9g,%d,%d,%.9g,%d,%d,%d,%.9g,%d,%d,%d\n", \
    algo, round, nval($0, "round_ms"), nval($0, "dispatch_ms"), \
    nval($0, "train_ms"), nval($0, "screen_ms"), nval($0, "aggregate_ms"), \
    nval($0, "eval_ms"), nval($0, "checkpoint_ms"), \
    nval($0, "test_accuracy"), nval($0, "test_loss"), \
    nval($0, "bytes_down"), nval($0, "bytes_up"), \
    nval($0, "wire_bytes_down"), wire_up, \
    nval($0, "wire_bytes_wasted"), nval($0, "dropouts"), \
    nval($0, "stragglers"), nval($0, "corrupted"), nval($0, "rejected"), \
    nval($0, "timeouts"), nval($0, "async_retries"), \
    nval($0, "virtual_time"), nval($0, "model_version"), \
    nval($0, "inflight"), nval($0, "staleness_mean"), \
    nval($0, "staleness_max"), \
    nval($0, "resident_clients"), nval($0, "peak_rss_bytes"), \
    nval($0, "dp_epsilon"), nval($0, "dp_clipped"), \
    nval($0, "mask_pairs"), nval($0, "mask_recoveries")
  printf "%-10s %5d %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %6.1fx\n", \
         algo, round, nval($0, "round_ms"), nval($0, "dispatch_ms"), \
         nval($0, "train_ms"), nval($0, "screen_ms"), \
         nval($0, "aggregate_ms"), nval($0, "eval_ms"), \
         nval($0, "checkpoint_ms"), ratio > "/dev/stderr"
}
' "$1"
