#!/usr/bin/env python3
"""Perf-regression gate: compare a fresh google-benchmark JSON run against
the committed baseline JSONs.

Usage:
    scripts/check_bench_regression.py --baseline-dir . --current-dir bench_out \
        [--threshold 0.15] [--files BENCH_gemm.json BENCH_round.json ...]

For every benchmark name present in both the baseline and the current file,
the gate fails if current_time > baseline_time * (1 + threshold). Benchmarks
missing on either side are reported but do not fail the gate (the set of
benchmarks is allowed to grow); a baseline file with no overlap at all fails,
since that usually means a renamed benchmark silently escaped the gate.

Wall-clock benches on shared CI runners are noisy, so the default threshold
is deliberately wide (15%) and aggregate entries (_mean/_median/_stddev) are
skipped in favour of the raw iterations entry.
"""

import argparse
import json
import os
import sys

AGGREGATE_SUFFIXES = ("_mean", "_median", "_stddev", "_cv", "_min", "_max")


def load_times(path):
    """Returns {benchmark name: real_time in ns} for a benchmark JSON file."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        if not name or name.endswith(AGGREGATE_SUFFIXES):
            continue
        if bench.get("run_type") == "aggregate":
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            print(f"warning: {name}: unknown time unit {unit!r}, skipped")
            continue
        times[name] = float(bench["real_time"]) * scale
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--current-dir", required=True,
                        help="directory holding the freshly generated JSONs")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    parser.add_argument("--files", nargs="+",
                        default=["BENCH_gemm.json", "BENCH_round.json",
                                 "BENCH_comm.json"],
                        help="baseline files to compare")
    args = parser.parse_args()

    failures = []
    compared = 0
    for name in args.files:
        baseline_path = os.path.join(args.baseline_dir, name)
        current_path = os.path.join(args.current_dir, name)
        if not os.path.exists(baseline_path):
            print(f"error: baseline {baseline_path} missing")
            return 1
        if not os.path.exists(current_path):
            print(f"error: current run {current_path} missing")
            return 1
        baseline = load_times(baseline_path)
        current = load_times(current_path)
        overlap = sorted(set(baseline) & set(current))
        if not overlap:
            print(f"error: {name}: no overlapping benchmarks between "
                  f"baseline and current run")
            return 1
        for missing in sorted(set(baseline) - set(current)):
            print(f"note: {name}: {missing} only in baseline (renamed?)")
        for bench in overlap:
            compared += 1
            ratio = current[bench] / baseline[bench]
            status = "ok"
            if ratio > 1.0 + args.threshold:
                status = "REGRESSION"
                failures.append((bench, ratio))
            print(f"{status:>10}  {bench}: {baseline[bench]:.0f} ns -> "
                  f"{current[bench]:.0f} ns  ({(ratio - 1.0) * 100:+.1f}%)")

    print(f"\ncompared {compared} benchmarks, "
          f"threshold +{args.threshold * 100:.0f}%")
    if failures:
        print(f"{len(failures)} regression(s):")
        for bench, ratio in failures:
            print(f"  {bench}: {(ratio - 1.0) * 100:+.1f}%")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
