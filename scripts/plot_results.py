#!/usr/bin/env python3
"""Plot the CSV outputs of the bench/ binaries (optional; needs matplotlib).

Usage:
    python3 scripts/plot_results.py fig5_curves.csv         # learning curves
    python3 scripts/plot_results.py fig4_landscape.csv      # loss surfaces
    python3 scripts/plot_results.py fig8_alpha_curves.csv   # alpha sweep
    python3 scripts/plot_results.py theory_convergence.csv  # O(1/t) check

Each bench CSV is self-describing; this script dispatches on its header.
Figures are written next to the CSV as <name>.png.
"""
import csv
import sys
from collections import defaultdict
from pathlib import Path


def load(path):
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader)
        rows = [dict(zip(header, row)) for row in reader]
    return header, rows


def plot_curves(plt, rows, group_keys, x_key, y_key, title):
    """One subplot per value of group_keys[0]; one line per group_keys[1]."""
    panels = defaultdict(lambda: defaultdict(list))
    for row in rows:
        panel = row[group_keys[0]]
        series = row[group_keys[1]]
        panels[panel][series].append((float(row[x_key]), float(row[y_key])))

    n = len(panels)
    fig, axes = plt.subplots(1, n, figsize=(4 * n, 3.2), squeeze=False)
    for ax, (panel, series_map) in zip(axes[0], sorted(panels.items())):
        for name, points in sorted(series_map.items()):
            points.sort()
            ax.plot([p[0] for p in points], [p[1] for p in points],
                    label=name, linewidth=1.2)
        ax.set_title(f"{title} ({panel})", fontsize=9)
        ax.set_xlabel(x_key)
        ax.set_ylabel(y_key)
        ax.legend(fontsize=6)
    fig.tight_layout()
    return fig


def plot_landscape(plt, rows):
    panels = defaultdict(list)
    for row in rows:
        panels[(row["setting"], row["method"])].append(
            (float(row["x"]), float(row["y"]), float(row["loss"])))
    n = len(panels)
    fig, axes = plt.subplots(1, n, figsize=(3.4 * n, 3), squeeze=False)
    for ax, (key, points) in zip(axes[0], sorted(panels.items())):
        xs = sorted({p[0] for p in points})
        ys = sorted({p[1] for p in points})
        grid = [[0.0] * len(xs) for _ in ys]
        for x, y, loss in points:
            grid[ys.index(y)][xs.index(x)] = loss
        im = ax.contourf(xs, ys, grid, levels=14)
        ax.set_title(" / ".join(key), fontsize=9)
        fig.colorbar(im, ax=ax, shrink=0.8)
    fig.tight_layout()
    return fig


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 1
    path = Path(sys.argv[1])
    header, rows = load(path)
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; raw data is in", path)
        return 1

    if {"setting", "method", "round", "test_accuracy"} <= set(header):
        fig = plot_curves(plt, rows, ("setting", "method"), "round",
                          "test_accuracy", path.stem)
    elif {"strategy", "alpha", "round"} <= set(header):
        fig = plot_curves(plt, rows, ("strategy", "alpha"), "round",
                          "test_accuracy", path.stem)
    elif {"k", "method", "round"} <= set(header):
        fig = plot_curves(plt, rows, ("k", "method"), "round",
                          "test_accuracy", path.stem)
    elif {"n", "method", "round"} <= set(header):
        fig = plot_curves(plt, rows, ("n", "method"), "round",
                          "test_accuracy", path.stem)
    elif {"setting", "variant", "round"} <= set(header):
        fig = plot_curves(plt, rows, ("setting", "variant"), "round",
                          "test_accuracy", path.stem)
    elif {"series", "round", "gap"} <= set(header):
        fig = plot_curves(plt, rows, ("series", "series"), "round", "gap",
                          path.stem)
        for ax in fig.axes:
            ax.set_yscale("log")
    elif {"setting", "method", "x", "y", "loss"} <= set(header):
        fig = plot_landscape(plt, rows)
    else:
        print("unrecognised CSV header:", header)
        return 1

    out = path.with_suffix(".png")
    fig.savefig(out, dpi=130)
    print("wrote", out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
